#include "fusion/sparsity_analysis.h"

#include <gtest/gtest.h>

#include "workloads/queries.h"

namespace fuseme {
namespace {

TEST(SparsityAnalysisTest, NmfPatternFindsSparseDriver) {
  // X * log(U×Vᵀ + eps) with X at density 0.001: the b(*) against X masks
  // the matmul result.
  NmfPattern q = BuildNmfPattern(10000, 10000, 100, /*x_nnz=*/100000);
  PartialPlan plan(&q.dag, {q.vT, q.mm, q.add, q.log, q.mul}, q.mul);
  SparseDriver driver = FindSparseDriver(plan, q.mm);
  ASSERT_TRUE(driver.found());
  EXPECT_EQ(driver.mul_node, q.mul);
  EXPECT_EQ(driver.sparse_input, q.X);
  EXPECT_NEAR(driver.density, 0.001, 1e-9);
  // Scaled nodes: the path mm -> add -> log -> mul.
  EXPECT_EQ(driver.scaled_nodes.size(), 4u);
}

TEST(SparsityAnalysisTest, AlsLossFindsDriverThroughChain) {
  // (X != 0) * (X - U×V)^2: mask reached through b(-) and u(^2)... the
  // mask itself is u(!=0)(X), which is *inside* the plan, so the external
  // test applies to X only when the mask node is external.  Build the plan
  // without the mask member so the driver is the mask node's output.
  AlsLossQuery q = BuildAlsLoss(5000, 5000, 50, /*x_nnz=*/25000);
  // Plan without the mask: {mm, sub, sq, mul, loss}; mul's other side is
  // the mask node (external, sparse estimate nnz(X)).
  PartialPlan plan(&q.dag, {q.mm, q.sub, q.sq, q.mul, q.loss}, q.loss);
  SparseDriver driver = FindSparseDriver(plan, q.mm);
  ASSERT_TRUE(driver.found());
  EXPECT_EQ(driver.mul_node, q.mul);
  EXPECT_EQ(driver.sparse_input, q.mask);
  // Path: mm -> sub -> sq -> mul.
  EXPECT_EQ(driver.scaled_nodes.size(), 4u);
}

TEST(SparsityAnalysisTest, DenseMaskIsNotADriver) {
  NmfPattern q = BuildNmfPattern(100, 100, 10, /*x_nnz=*/9000);  // d=0.9
  PartialPlan plan(&q.dag, {q.vT, q.mm, q.add, q.log, q.mul}, q.mul);
  EXPECT_FALSE(FindSparseDriver(plan, q.mm).found());
}

TEST(SparsityAnalysisTest, ThresholdIsConfigurable) {
  NmfPattern q = BuildNmfPattern(100, 100, 10, /*x_nnz=*/3000);  // d=0.3
  PartialPlan plan(&q.dag, {q.vT, q.mm, q.add, q.log, q.mul}, q.mul);
  EXPECT_FALSE(FindSparseDriver(plan, q.mm, 0.25).found());
  EXPECT_TRUE(FindSparseDriver(plan, q.mm, 0.5).found());
}

TEST(SparsityAnalysisTest, GnmfUSideHasNoDriver) {
  // U * (Vᵀ×X): the b(*) against U is dense, no exploitation.
  GnmfQuery q = BuildGnmf(10000, 8000, 20, /*x_nnz=*/80000);
  PartialPlan plan(&q.dag, {q.a1, q.a2, q.a3, q.a4, q.a5}, q.a5);
  EXPECT_FALSE(FindSparseDriver(plan, q.a1).found());
}

TEST(SparsityAnalysisTest, StopsAtNonElementwiseAncestor) {
  // sum(U×V) then multiplied by sparse X would require the mask to commute
  // with the aggregation — it must not be detected.
  Dag dag;
  NodeId x = *dag.AddInput("X", 1, 1, 0);
  NodeId u = *dag.AddInput("U", 100, 50);
  NodeId v = *dag.AddInput("V", 50, 100);
  NodeId mm = *dag.AddMatMul(u, v);
  NodeId agg = *dag.AddUnaryAgg(AggFn::kSum, AggAxis::kAll, mm);
  NodeId mul = *dag.AddBinary(BinaryFn::kMul, x, agg);
  PartialPlan plan(&dag, {mm, agg, mul}, mul);
  EXPECT_FALSE(FindSparseDriver(plan, mm).found());
}

TEST(SparsityAnalysisTest, DeepSharedSubexpressionMaskTerminates) {
  // The in-plan mask is a diamond chain: 34 levels of e_{i+1} = e_i * e_i,
  // each level reusing the previous node twice.  An unmemoized
  // SubtreeIsElementwise walk visits 2^34 nodes and effectively hangs;
  // the memoized walk is linear.  The walk runs before the density check,
  // so the blowup is density-independent — this test must finish fast
  // regardless of whether a driver is ultimately reported.
  Dag dag;
  NodeId x = *dag.AddInput("X", 64, 64, /*nnz=*/40);
  NodeId u = *dag.AddInput("U", 64, 8);
  NodeId v = *dag.AddInput("V", 8, 64);
  NodeId mm = *dag.AddMatMul(u, v);
  NodeId e = x;
  std::vector<NodeId> members;
  for (int level = 0; level < 34; ++level) {
    e = *dag.AddBinary(BinaryFn::kMul, e, e);
    members.push_back(e);
  }
  NodeId mul = *dag.AddBinary(BinaryFn::kMul, mm, e);
  members.insert(members.begin(), mm);
  members.push_back(mul);
  // The diamond chain is a DAG, not a tree, so bypass the constructor's
  // tree checks the way the verifier tests do.
  PartialPlan plan = PartialPlan::UncheckedForTest(&dag, members, mul);
  SparseDriver driver = FindSparseDriver(plan, mm);
  // The chain is element-wise throughout, so the walk itself accepts it;
  // whether the driver fires then depends only on the density estimate.
  if (driver.found()) {
    EXPECT_EQ(driver.mul_node, mul);
    EXPECT_EQ(driver.sparse_input, e);
  }
}

TEST(SparsityAnalysisTest, InvalidMainMatMul) {
  GnmfQuery q = BuildGnmf(100, 80, 4, 40);
  PartialPlan plan(&q.dag, {q.a1, q.a3}, q.a3);
  EXPECT_FALSE(FindSparseDriver(plan, kInvalidNode).found());
}

}  // namespace
}  // namespace fuseme
