#include "ir/parser.h"

#include <cctype>
#include <vector>

#include "telemetry/metric_names.h"
#include "telemetry/metrics.h"

namespace fuseme {

namespace {

enum class TokKind {
  kNumber,
  kIdent,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kCaret,
  kMatMul,  // %*%
  kLParen,
  kRParen,
  kComma,
  kEq,   // ==
  kNeq,  // !=
  kLt,
  kGt,
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;
  double number = 0.0;
  std::size_t pos = 0;
};

Status SyntaxError(std::size_t pos, const std::string& what) {
  return Status::InvalidArgument("parse error at offset " +
                                 std::to_string(pos) + ": " + what);
}

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (true) {
      SkipSpace();
      const std::size_t pos = i_;
      if (i_ >= text_.size()) {
        out.push_back({TokKind::kEnd, "", 0.0, pos});
        return out;
      }
      const char c = text_[i_];
      if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
        std::size_t used = 0;
        double value = 0.0;
        try {
          value = std::stod(std::string(text_.substr(i_)), &used);
        } catch (...) {
          return SyntaxError(pos, "bad number");
        }
        i_ += used;
        out.push_back({TokKind::kNumber, "", value, pos});
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::size_t j = i_;
        while (j < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[j])) ||
                text_[j] == '_')) {
          ++j;
        }
        out.push_back({TokKind::kIdent,
                       std::string(text_.substr(i_, j - i_)), 0.0, pos});
        i_ = j;
        continue;
      }
      if (text_.substr(i_, 3) == "%*%") {
        out.push_back({TokKind::kMatMul, "%*%", 0.0, pos});
        i_ += 3;
        continue;
      }
      if (text_.substr(i_, 2) == "==") {
        out.push_back({TokKind::kEq, "==", 0.0, pos});
        i_ += 2;
        continue;
      }
      if (text_.substr(i_, 2) == "!=") {
        out.push_back({TokKind::kNeq, "!=", 0.0, pos});
        i_ += 2;
        continue;
      }
      TokKind kind;
      switch (c) {
        case '+':
          kind = TokKind::kPlus;
          break;
        case '-':
          kind = TokKind::kMinus;
          break;
        case '*':
          kind = TokKind::kStar;
          break;
        case '/':
          kind = TokKind::kSlash;
          break;
        case '^':
          kind = TokKind::kCaret;
          break;
        case '(':
          kind = TokKind::kLParen;
          break;
        case ')':
          kind = TokKind::kRParen;
          break;
        case ',':
          kind = TokKind::kComma;
          break;
        case '<':
          kind = TokKind::kLt;
          break;
        case '>':
          kind = TokKind::kGt;
          break;
        default:
          return SyntaxError(pos, std::string("unexpected character '") + c +
                                      "'");
      }
      out.push_back({kind, std::string(1, c), 0.0, pos});
      ++i_;
    }
  }

 private:
  void SkipSpace() {
    while (i_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[i_]))) {
      ++i_;
    }
  }

  std::string_view text_;
  std::size_t i_ = 0;
};

class Parser {
 public:
  Parser(std::vector<Token> tokens, Dag* dag,
         const std::map<std::string, MatrixShape>& symbols,
         std::map<std::string, NodeId>* bound)
      : tokens_(std::move(tokens)),
        dag_(dag),
        symbols_(symbols),
        bound_(bound) {}

  Result<NodeId> Parse() {
    FUSEME_ASSIGN_OR_RETURN(NodeId root, ParseExpr());
    if (Peek().kind != TokKind::kEnd) {
      return SyntaxError(Peek().pos, "trailing input");
    }
    return root;
  }

 private:
  const Token& Peek() const { return tokens_[i_]; }
  Token Next() { return tokens_[i_++]; }
  bool Accept(TokKind kind) {
    if (Peek().kind == kind) {
      ++i_;
      return true;
    }
    return false;
  }

  /// Binary node with scalar-aware shape validation delegated to Dag.
  Result<NodeId> MakeBinary(BinaryFn fn, NodeId lhs, NodeId rhs,
                            std::size_t pos) {
    Result<NodeId> made = dag_->AddBinary(fn, lhs, rhs);
    if (!made.ok()) return SyntaxError(pos, made.status().message());
    return made;
  }

  Result<NodeId> ParseExpr() {
    FUSEME_ASSIGN_OR_RETURN(NodeId lhs, ParseCmp());
    while (Peek().kind == TokKind::kPlus || Peek().kind == TokKind::kMinus) {
      Token op = Next();
      FUSEME_ASSIGN_OR_RETURN(NodeId rhs, ParseCmp());
      FUSEME_ASSIGN_OR_RETURN(
          lhs, MakeBinary(op.kind == TokKind::kPlus ? BinaryFn::kAdd
                                                    : BinaryFn::kSub,
                          lhs, rhs, op.pos));
    }
    return lhs;
  }

  Result<NodeId> ParseCmp() {
    FUSEME_ASSIGN_OR_RETURN(NodeId lhs, ParseTerm());
    while (true) {
      BinaryFn fn;
      switch (Peek().kind) {
        case TokKind::kEq:
          fn = BinaryFn::kEqual;
          break;
        case TokKind::kNeq:
          fn = BinaryFn::kNotEqual;
          break;
        case TokKind::kLt:
          fn = BinaryFn::kLess;
          break;
        case TokKind::kGt:
          fn = BinaryFn::kGreater;
          break;
        default:
          return lhs;
      }
      Token op = Next();
      FUSEME_ASSIGN_OR_RETURN(NodeId rhs, ParseTerm());
      FUSEME_ASSIGN_OR_RETURN(lhs, MakeBinary(fn, lhs, rhs, op.pos));
    }
  }

  Result<NodeId> ParseTerm() {
    FUSEME_ASSIGN_OR_RETURN(NodeId lhs, ParsePower());
    while (Peek().kind == TokKind::kStar || Peek().kind == TokKind::kSlash) {
      Token op = Next();
      FUSEME_ASSIGN_OR_RETURN(NodeId rhs, ParsePower());
      FUSEME_ASSIGN_OR_RETURN(
          lhs, MakeBinary(op.kind == TokKind::kStar ? BinaryFn::kMul
                                                    : BinaryFn::kDiv,
                          lhs, rhs, op.pos));
    }
    return lhs;
  }

  Result<NodeId> ParsePower() {
    FUSEME_ASSIGN_OR_RETURN(NodeId base, ParseMatMul());
    if (Peek().kind != TokKind::kCaret) return base;
    Token op = Next();
    // '^ 2' lowers to the unary square (the fused-operator friendly form).
    if (Peek().kind == TokKind::kNumber && Peek().number == 2.0) {
      Next();
      Result<NodeId> made = dag_->AddUnary(UnaryFn::kSquare, base);
      if (!made.ok()) return SyntaxError(op.pos, made.status().message());
      return made;
    }
    FUSEME_ASSIGN_OR_RETURN(NodeId exp, ParsePower());  // right-assoc
    return MakeBinary(BinaryFn::kPow, base, exp, op.pos);
  }

  Result<NodeId> ParseMatMul() {
    FUSEME_ASSIGN_OR_RETURN(NodeId lhs, ParseUnary());
    while (Peek().kind == TokKind::kMatMul) {
      Token op = Next();
      FUSEME_ASSIGN_OR_RETURN(NodeId rhs, ParseUnary());
      Result<NodeId> made = dag_->AddMatMul(lhs, rhs);
      if (!made.ok()) return SyntaxError(op.pos, made.status().message());
      lhs = *made;
    }
    return lhs;
  }

  Result<NodeId> ParseUnary() {
    if (Peek().kind == TokKind::kMinus) {
      Token op = Next();
      FUSEME_ASSIGN_OR_RETURN(NodeId operand, ParseUnary());
      Result<NodeId> made = dag_->AddUnary(UnaryFn::kNeg, operand);
      if (!made.ok()) return SyntaxError(op.pos, made.status().message());
      return made;
    }
    return ParsePrimary();
  }

  Result<NodeId> ParseFunction(const Token& name) {
    // Collect arguments.
    std::vector<NodeId> args;
    if (!Accept(TokKind::kLParen)) {
      return SyntaxError(name.pos, "expected '(' after " + name.text);
    }
    if (!Accept(TokKind::kRParen)) {
      do {
        FUSEME_ASSIGN_OR_RETURN(NodeId arg, ParseExpr());
        args.push_back(arg);
      } while (Accept(TokKind::kComma));
      if (!Accept(TokKind::kRParen)) {
        return SyntaxError(Peek().pos, "expected ')'");
      }
    }
    auto unary = [&](UnaryFn fn) -> Result<NodeId> {
      if (args.size() != 1) {
        return SyntaxError(name.pos, name.text + " takes one argument");
      }
      Result<NodeId> made = dag_->AddUnary(fn, args[0]);
      if (!made.ok()) return SyntaxError(name.pos, made.status().message());
      return made;
    };
    auto agg = [&](AggFn fn, AggAxis axis) -> Result<NodeId> {
      if (args.size() != 1) {
        return SyntaxError(name.pos, name.text + " takes one argument");
      }
      Result<NodeId> made = dag_->AddUnaryAgg(fn, axis, args[0]);
      if (!made.ok()) return SyntaxError(name.pos, made.status().message());
      return made;
    };
    auto binary = [&](BinaryFn fn) -> Result<NodeId> {
      if (args.size() != 2) {
        return SyntaxError(name.pos, name.text + " takes two arguments");
      }
      return MakeBinary(fn, args[0], args[1], name.pos);
    };

    const std::string& f = name.text;
    if (f == "t") {
      if (args.size() != 1) {
        return SyntaxError(name.pos, "t takes one argument");
      }
      Result<NodeId> made = dag_->AddTranspose(args[0]);
      if (!made.ok()) return SyntaxError(name.pos, made.status().message());
      return made;
    }
    if (f == "log") return unary(UnaryFn::kLog);
    if (f == "exp") return unary(UnaryFn::kExp);
    if (f == "sqrt") return unary(UnaryFn::kSqrt);
    if (f == "abs") return unary(UnaryFn::kAbs);
    if (f == "sigmoid") return unary(UnaryFn::kSigmoid);
    if (f == "relu") return unary(UnaryFn::kRelu);
    if (f == "sq" || f == "square") return unary(UnaryFn::kSquare);
    if (f == "nz") return unary(UnaryFn::kNotZero);
    if (f == "sum") return agg(AggFn::kSum, AggAxis::kAll);
    if (f == "rowSums") return agg(AggFn::kSum, AggAxis::kRow);
    if (f == "colSums") return agg(AggFn::kSum, AggAxis::kCol);
    if (f == "min") return binary(BinaryFn::kMin);
    if (f == "max") return binary(BinaryFn::kMax);
    if (f == "pow") return binary(BinaryFn::kPow);
    return SyntaxError(name.pos, "unknown function '" + f + "'");
  }

  Result<NodeId> ParsePrimary() {
    Token tok = Next();
    switch (tok.kind) {
      case TokKind::kNumber: {
        Result<NodeId> made = dag_->AddScalar(tok.number);
        if (!made.ok()) return SyntaxError(tok.pos, made.status().message());
        return made;
      }
      case TokKind::kLParen: {
        FUSEME_ASSIGN_OR_RETURN(NodeId inner, ParseExpr());
        if (!Accept(TokKind::kRParen)) {
          return SyntaxError(Peek().pos, "expected ')'");
        }
        return inner;
      }
      case TokKind::kIdent: {
        if (Peek().kind == TokKind::kLParen) return ParseFunction(tok);
        // Matrix identifier.
        if (auto it = bound_->find(tok.text); it != bound_->end()) {
          return it->second;
        }
        auto sym = symbols_.find(tok.text);
        if (sym == symbols_.end()) {
          return SyntaxError(tok.pos, "unknown matrix '" + tok.text + "'");
        }
        Result<NodeId> made = dag_->AddInput(
            tok.text, sym->second.rows, sym->second.cols, sym->second.nnz);
        if (!made.ok()) return SyntaxError(tok.pos, made.status().message());
        bound_->emplace(tok.text, *made);
        return made;
      }
      default:
        return SyntaxError(tok.pos, "unexpected token '" + tok.text + "'");
    }
  }

  std::vector<Token> tokens_;
  std::size_t i_ = 0;
  Dag* dag_;
  const std::map<std::string, MatrixShape>& symbols_;
  std::map<std::string, NodeId>* bound_;
};

Result<ParsedQuery> ParseQueryImpl(
    std::string_view text,
    const std::map<std::string, MatrixShape>& symbols) {
  Lexer lexer(text);
  FUSEME_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Run());
  ParsedQuery query;
  query.dag = std::make_unique<Dag>();
  Parser parser(std::move(tokens), query.dag.get(), symbols, &query.inputs);
  FUSEME_ASSIGN_OR_RETURN(query.root, parser.Parse());
  const Node& root = query.dag->node(query.root);
  if (!root.is_matrix() && root.kind == OpKind::kScalar) {
    return Status::InvalidArgument("query reduces to a scalar literal");
  }
  query.dag->MarkOutput(query.root);
  return query;
}

}  // namespace

Result<ParsedQuery> ParseQuery(
    std::string_view text, const std::map<std::string, MatrixShape>& symbols,
    MetricsRegistry* metrics) {
  Result<ParsedQuery> result = ParseQueryImpl(text, symbols);
  if (metrics != nullptr) {
    metrics->GetCounter(metric_names::kParserQueries)->Increment();
    if (!result.ok()) {
      metrics->GetCounter(metric_names::kParserErrors)->Increment();
    } else {
      const Dag& dag = *result->dag;
      for (std::int64_t id = 0; id < dag.num_nodes(); ++id) {
        metrics
            ->GetCounter(
                metric_names::kIrNodes,
                {{"kind", std::string(OpKindName(dag.node(id).kind))}})
            ->Increment();
      }
    }
  }
  return result;
}

}  // namespace fuseme
