// google-benchmark microbenchmarks for the local kernels that all the
// distributed operators bottom out in: block element-wise ops, matrix
// multiplication across representations, and the fused-kernel evaluator's
// masked (sparsity-exploiting) path vs the dense path.
//
// Before the google-benchmark cases, main() runs a serial-vs-parallel GEMM
// suite (the tiled dense kernel at 1 thread vs the machine's parallelism),
// verifies the results are bitwise identical, and writes the measurements
// to BENCH_microkernels.json.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "matrix/block_ops.h"
#include "matrix/generators.h"
#include "ops/evaluator.h"
#include "telemetry/metric_names.h"
#include "telemetry/metrics.h"
#include "workloads/queries.h"

namespace fuseme {
namespace {

void BM_EwiseMulDenseDense(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Block a = Block::FromDense(RandomDense(n, n, 1, 1.0, 2.0));
  Block b = Block::FromDense(RandomDense(n, n, 2, 1.0, 2.0));
  for (auto _ : state) {
    auto result = EwiseBinary(BinaryFn::kMul, a, b);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_EwiseMulDenseDense)->Arg(64)->Arg(256);

void BM_EwiseMulSparseDense(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Block a = Block::FromSparse(RandomSparse(n, n, 0.01, 1, 1.0, 2.0));
  Block b = Block::FromDense(RandomDense(n, n, 2, 1.0, 2.0));
  for (auto _ : state) {
    auto result = EwiseBinary(BinaryFn::kMul, a, b);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_EwiseMulSparseDense)->Arg(64)->Arg(256);

void BM_MatMulDense(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Block a = Block::FromDense(RandomDense(n, n, 1, 1.0, 2.0));
  Block b = Block::FromDense(RandomDense(n, n, 2, 1.0, 2.0));
  for (auto _ : state) {
    auto result = MatMul(a, b);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMulDense)->Arg(32)->Arg(128);

void BM_MatMulSparseDense(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Block a = Block::FromSparse(RandomSparse(n, n, 0.02, 1, 1.0, 2.0));
  Block b = Block::FromDense(RandomDense(n, n, 2, 1.0, 2.0));
  for (auto _ : state) {
    auto result = MatMul(a, b);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * 2 * a.nnz() * n);
}
BENCHMARK(BM_MatMulSparseDense)->Arg(128)->Arg(256);

void BM_TransposeSparse(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Block a = Block::FromSparse(RandomSparse(n, n, 0.05, 1, 1.0, 2.0));
  for (auto _ : state) {
    auto result = Transpose(a);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_TransposeSparse)->Arg(256);

// The fused kernel of Fig. 8 — dense evaluation vs the sparsity-exploiting
// masked path on the same block.
struct EvalSetup {
  NmfPattern q;
  PartialPlan plan;
  std::map<NodeId, BlockedMatrix> data;

  explicit EvalSetup(std::int64_t n, double density)
      : q(BuildNmfPattern(n, n, 64,
                          static_cast<std::int64_t>(density * n * n))),
        plan(&q.dag, {q.vT, q.mm, q.add, q.log, q.mul}, q.mul) {
    data[q.X] = BlockedMatrix::FromSparse(
        RandomSparse(n, n, density, 1, 1.0, 2.0), n);
    data[q.U] = BlockedMatrix::FromDense(RandomDense(n, 64, 2), n);
    data[q.V] = BlockedMatrix::FromDense(RandomDense(n, 64, 3), n);
  }

  BlockFetcher Fetcher() {
    return [this](NodeId id, std::int64_t bi,
                  std::int64_t bj) -> Result<Block> {
      return data.at(id).block(bi, bj);
    };
  }
};

void BM_FusedKernelDensePath(benchmark::State& state) {
  EvalSetup setup(256, 0.01);
  for (auto _ : state) {
    KernelEvaluator eval(&setup.plan, 256, setup.Fetcher());
    auto result = eval.Eval(setup.q.mul, 0, 0);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FusedKernelDensePath);

void BM_FusedKernelMaskedPath(benchmark::State& state) {
  EvalSetup setup(256, 0.01);
  SparseDriver driver = FindSparseDriver(setup.plan, setup.q.mm);
  for (auto _ : state) {
    KernelEvaluator eval(&setup.plan, 256, setup.Fetcher());
    eval.SetSparseDriver(driver);
    auto result = eval.Eval(setup.q.mul, 0, 0);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FusedKernelMaskedPath);

// --- Serial vs parallel tiled GEMM (the ISSUE acceptance measurement). ---

double TimeGemmSeconds(const Block& a, const Block& b, Block* out) {
  // Best of 3 runs, to shave scheduler noise.
  double best = 1e30;
  for (int run = 0; run < 3; ++run) {
    const auto t0 = std::chrono::steady_clock::now();
    auto result = MatMul(a, b);
    const auto t1 = std::chrono::steady_clock::now();
    if (!result.ok()) {
      std::fprintf(stderr, "GEMM failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    *out = std::move(*result);
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

void RunGemmSpeedupSuite(std::vector<bench::BenchRecord>* records,
                         MetricsRegistry* metrics) {
  // FUSEME_BENCH_GEMM_N overrides the block size (quick local runs).
  std::int64_t n = 2048;
  if (const char* env = std::getenv("FUSEME_BENCH_GEMM_N")) {
    n = std::max<std::int64_t>(1, std::atoll(env));
  }
  const int machine = GlobalParallelism();
  std::printf("--- dense %lldx%lld block GEMM, 1 thread vs %d ---\n",
              static_cast<long long>(n), static_cast<long long>(n), machine);

  Block a = Block::FromDense(RandomDense(n, n, 1, -1.0, 1.0));
  Block b = Block::FromDense(RandomDense(n, n, 2, -1.0, 1.0));
  const std::int64_t flops = 2 * n * n * n;
  const std::int64_t bytes = 3 * n * n * 8;

  Block serial_out, parallel_out;
  SetGlobalThreadPoolThreads(1);
  const double serial = TimeGemmSeconds(a, b, &serial_out);
  SetGlobalThreadPoolThreads(machine);
  const double parallel = TimeGemmSeconds(a, b, &parallel_out);

  if (DenseMatrix::MaxAbsDiff(serial_out.ToDense(), parallel_out.ToDense()) !=
      0.0) {
    std::fprintf(stderr, "FAIL: parallel GEMM result differs from serial\n");
    std::exit(1);
  }

  std::printf(
      "serial  %.3fs (%.2f GFLOP/s)\nparallel %.3fs (%.2f GFLOP/s)\n"
      "speedup %.2fx at %d threads (results bitwise identical)\n\n",
      serial, static_cast<double>(flops) / serial / 1e9, parallel,
      static_cast<double>(flops) / parallel / 1e9, serial / parallel,
      machine);

  // Mirror the measurements into the registry so BENCH_microkernels.json
  // carries a metrics snapshot alongside the records.
  for (const auto& [threads, seconds] :
       {std::pair<int, double>{1, serial}, {machine, parallel}}) {
    const MetricLabels labels = {{"threads", std::to_string(threads)}};
    metrics->GetCounter(metric_names::kKernelGemmFlops, labels)->Add(flops);
    metrics->GetCounter(metric_names::kKernelFlops, labels)->Add(flops);
    metrics
        ->GetHistogram("fuseme_bench_gemm_seconds", DefaultTimeBoundaries(),
                       labels)
        ->Observe(seconds);
    metrics->GetGauge("fuseme_bench_gemm_gflops", labels)
        ->Set(static_cast<double>(flops) / seconds / 1e9);
  }

  const std::string size = std::to_string(n);
  records->push_back({"dense_gemm",
                      {{"n", size}, {"threads", "1"}},
                      serial,
                      bytes,
                      flops});
  records->push_back({"dense_gemm",
                      {{"n", size}, {"threads", std::to_string(machine)}},
                      parallel,
                      bytes,
                      flops});
  bench::BenchRecord speedup{"dense_gemm_speedup",
                             {{"n", size},
                              {"threads", std::to_string(machine)},
                              {"speedup", [&] {
                                 char buf[32];
                                 std::snprintf(buf, sizeof(buf), "%.3f",
                                               serial / parallel);
                                 return std::string(buf);
                               }()}},
                             parallel,
                             bytes,
                             flops};
  records->push_back(std::move(speedup));
}

}  // namespace
}  // namespace fuseme

int main(int argc, char** argv) {
  std::vector<fuseme::bench::BenchRecord> records;
  fuseme::MetricsRegistry metrics;
  fuseme::RunGemmSpeedupSuite(&records, &metrics);
  if (!fuseme::bench::WriteBenchJson("microkernels", records,
                                     metrics.Snapshot().ToJson())) {
    return 1;
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
