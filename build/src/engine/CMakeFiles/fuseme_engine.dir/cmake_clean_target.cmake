file(REMOVE_RECURSE
  "libfuseme_engine.a"
)
