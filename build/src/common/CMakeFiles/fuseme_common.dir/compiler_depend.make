# Empty compiler generated dependencies file for fuseme_common.
# This may be replaced when dependencies are built.
