file(REMOVE_RECURSE
  "libfuseme_ops.a"
)
