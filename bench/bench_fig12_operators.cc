// Figure 12 (+ Table 3): distributed fused operator comparison on
// O = X * log(U × Vᵀ + eps) over the three synthetic sweeps and the
// node-scaling experiment.  Systems: SystemDS's BFO/RFO (selected by the
// §6.2 rule, as SystemDS does), DistME (CuboidMM, no fusion), and FuseME's
// CFO.  The §6.2 methodology executes the whole query as ONE fused
// operator in the fused systems (the planner is bypassed).
//
// Elapsed times and communication come from the analytic executor on the
// paper's modeled cluster (8 nodes, 12 tasks/node, 10 GB/task, 1 Gbps).

#include <cstdio>

#include "bench_util.h"
#include "workloads/datasets.h"
#include "workloads/queries.h"

using namespace fuseme;         // NOLINT
using namespace fuseme::bench;  // NOLINT

namespace {

struct Row {
  std::string label;
  ExecutionReport systemds;
  std::string systemds_op;  // "B" or "R"
  ExecutionReport distme;
  ExecutionReport fuseme;
  Cuboid pqr;
};

Row RunSpec(const SyntheticSpec& spec, int num_nodes = 8) {
  Row row;
  row.label = spec.label;
  NmfPattern q = BuildNmfPattern(spec.i, spec.j, spec.k, spec.x_nnz());
  FusionPlanSet full;
  full.plans.emplace_back(
      &q.dag, std::vector<NodeId>{q.vT, q.mm, q.add, q.log, q.mul}, q.mul);
  full.description = "single fused operator (Sec 6.2 methodology)";

  EngineOptions options;
  options.analytic = true;
  options.cluster.num_nodes = num_nodes;

  {  // SystemDS: BFO or RFO by the §6.2 rule — its only two *fused*
     // operators ("SystemDS uses only either BFO or RFO").
    options.system = SystemMode::kSystemDs;
    Engine engine(options);
    const std::int64_t bs = options.cluster.block_size;
    const std::int64_t gi = (spec.i + bs - 1) / bs;
    const std::int64_t gj = (spec.j + bs - 1) / bs;
    const std::int64_t parts = EstimateSparkPartitions(
        SizeOf(q.dag, q.X), gi * gj);
    const bool use_bfo = parts < gi || parts < gj;
    row.systemds_op = use_bfo ? "B" : "R";
    auto run = engine.RunWithPlans(
        q.dag, full, {},
        use_bfo ? OperatorKind::kBfo : OperatorKind::kRfo);
    row.systemds = run.report;
  }
  {  // DistME: operator-at-a-time with CuboidMM.
    options.system = SystemMode::kDistMe;
    Engine engine(options);
    row.distme = engine.Run(q.dag, {}).report;
  }
  {  // FuseME: the whole query as one CFO.
    options.system = SystemMode::kFuseMe;
    Engine engine(options);
    auto run = engine.RunWithPlans(q.dag, full, {}, OperatorKind::kCfo);
    row.fuseme = run.report;
    // Recover (P*,Q*,R*) for Table 3.
    PqrOptimizer opt(&engine.cost_model());
    row.pqr = opt.Pruned(full.plans[0]).c;
  }
  return row;
}

void PrintSweep(const char* title, const std::vector<SyntheticSpec>& specs) {
  std::printf("--- %s ---\n", title);
  PrintRow({"n", "SystemDS", "", "DistME", "FuseME", "", "(P*,Q*,R*)"});
  PrintRow({"", "elapsed", "comm GB", "elapsed", "elapsed", "comm GB", ""});
  PrintRule(7);
  for (const SyntheticSpec& spec : specs) {
    Row row = RunSpec(spec);
    PrintRow({row.label + " (" + row.systemds_op + ")",
              ElapsedCell(row.systemds), BytesCell(row.systemds),
              ElapsedCell(row.distme), ElapsedCell(row.fuseme),
              BytesCell(row.fuseme), row.pqr.ToString()});
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf(
      "=== Figure 12: BFO/RFO vs DistME vs CFO on X*log(U x V^T + eps) "
      "===\n\n");
  PrintSweep("Fig 12(a,e): two large dimensions (n x 2K x n, d=0.001)",
             VaryTwoLargeDimensions());
  PrintSweep("Fig 12(b,f): common dimension (100K x n x 100K, d=0.2)",
             VaryCommonDimension());
  PrintSweep("Fig 12(c,g): density (100K x 2K x 100K)", VaryDensity());

  std::printf("--- Fig 12(d,h): varying the number of nodes ---\n");
  PrintRow({"nodes", "d", "SystemDS", "FuseME"});
  PrintRule(4);
  for (double density : {0.1, 0.2}) {
    for (int nodes : {2, 4, 8}) {
      SyntheticSpec spec{"100K", 100000, 100000, 2000, density};
      Row row = RunSpec(spec, nodes);
      char d[16];
      std::snprintf(d, sizeof(d), "%.1f", density);
      PrintRow({std::to_string(nodes), d,
                ElapsedCell(row.systemds) + " (" + row.systemds_op + ")",
                ElapsedCell(row.fuseme)});
    }
  }
  std::printf(
      "\nTable 3 note: the (P*,Q*,R*) column above is the optimizer's pick\n"
      "per dataset (paper Table 3 reports (8,6,2)-style values).\n");
  return 0;
}
