#include "telemetry/observability.h"

namespace fuseme {

namespace {

Status Invalid(const std::string& what) {
  return Status::InvalidArgument("observability options: " + what);
}

}  // namespace

Status ObservabilityOptions::Validate(bool have_metrics) const {
  if (journal_capacity < 0) {
    return Invalid("journal_capacity must be >= 0 (0 disables), got " +
                   std::to_string(journal_capacity));
  }
  if (sample_period_seconds < 0) {
    return Invalid("sample_period_seconds must be >= 0 (0 disables), got " +
                   std::to_string(sample_period_seconds));
  }
  if (sampler_capacity <= 0) {
    return Invalid("sampler_capacity must be > 0, got " +
                   std::to_string(sampler_capacity));
  }
  if (exporter_port < -1 || exporter_port > 65535) {
    return Invalid("exporter_port must be in [-1, 65535], got " +
                   std::to_string(exporter_port));
  }
  if (sample_period_seconds > 0 && !have_metrics) {
    return Invalid("the sampler needs a metrics registry on the options");
  }
  if (exporter_port >= 0 && !have_metrics && journal_capacity == 0) {
    return Invalid(
        "the exporter needs at least one source (metrics or journal)");
  }
  if (crash_dump && journal_capacity == 0) {
    return Invalid("crash_dump requires journal_capacity > 0");
  }
  return Status::OK();
}

Result<std::unique_ptr<ObservabilityPlane>> ObservabilityPlane::Start(
    const ObservabilityOptions& options, const MetricsRegistry* metrics,
    std::chrono::steady_clock::time_point epoch) {
  FUSEME_RETURN_IF_ERROR(options.Validate(metrics != nullptr));

  // Not make_unique: the constructor is private.
  std::unique_ptr<ObservabilityPlane> plane(new ObservabilityPlane());
  plane->options_ = options;

  if (options.journal_capacity > 0) {
    plane->journal_ =
        std::make_unique<EventJournal>(options.journal_capacity, epoch);
    if (options.crash_dump) {
      AttachJournalCrashDump(plane->journal_.get());
      plane->crash_dump_attached_ = true;
    }
  }
  if (options.sample_period_seconds > 0) {
    MetricsSampler::Options sampler_options;
    sampler_options.period_seconds = options.sample_period_seconds;
    sampler_options.capacity = options.sampler_capacity;
    plane->sampler_ =
        std::make_unique<MetricsSampler>(metrics, sampler_options, epoch);
    plane->sampler_->Start();
  }
  if (options.exporter_port >= 0) {
    plane->exporter_ = std::make_unique<HttpExporter>(
        HttpExporter::Options{options.exporter_port}, metrics,
        plane->journal_.get(), plane->sampler_.get());
    FUSEME_RETURN_IF_ERROR(plane->exporter_->Start());
    // ~ObservabilityPlane handles partial teardown if we returned above.
  }
  return plane;
}

ObservabilityPlane::~ObservabilityPlane() {
  // Exporter first so no request can touch a stopping sampler/journal,
  // then the sampler's thread, then (implicitly) the journal.
  if (exporter_ != nullptr) exporter_->Stop();
  if (sampler_ != nullptr) sampler_->Stop();
  if (crash_dump_attached_) AttachJournalCrashDump(nullptr);
}

int ObservabilityPlane::exporter_port() const {
  return exporter_ != nullptr ? exporter_->port() : -1;
}

}  // namespace fuseme
