// Flight recorder: a fixed-capacity ring journal of structured engine
// events (see DESIGN.md section 17).
//
// Every event carries a monotonically increasing sequence number, a
// steady-clock timestamp (microseconds since the journal's epoch, which
// the engine shares with its Tracer so /flightz events line up with
// TRACE_*.json spans), a severity, a stable catalogued id
// (telemetry/event_names.h), and a small key/value payload.
//
// Concurrency contract: Emit never blocks an emitting thread on a
// consumer or on space — the journal is sharded over kShards
// independently-locked rings keyed round-robin by sequence number, an
// append holds exactly one shard mutex for an O(1) slot write, and a
// full ring overwrites its oldest entry instead of waiting.  Snapshot /
// DumpJson lock the shards one at a time and sort by sequence, so
// readers (the /flightz endpoint, the crash hook) run concurrently with
// emitters.  Like Tracer*/MetricsRegistry*, every integration point
// takes a nullable EventJournal* and null disables emission at the cost
// of one pointer test.

#ifndef FUSEME_TELEMETRY_EVENT_JOURNAL_H_
#define FUSEME_TELEMETRY_EVENT_JOURNAL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/result.h"
#include "common/synchronization.h"

namespace fuseme {

/// One recorded event.  `seq` is unique and dense across the journal's
/// lifetime (it keeps counting past overwrites, so `seq` minus the
/// snapshot's first sequence tells how much history was lost); `t_us`
/// is microseconds since the journal's epoch on the steady clock.
struct JournalEvent {
  std::int64_t seq = 0;
  std::int64_t t_us = 0;
  LogLevel severity = LogLevel::kInfo;
  std::string id;  // catalogued id from telemetry/event_names.h
  std::vector<std::pair<std::string, std::string>> payload;

  bool operator==(const JournalEvent&) const = default;
};

/// Mutex-sharded bounded event ring.  Thread-safe as a whole.
class EventJournal {
 public:
  /// `capacity` is the number of retained events, rounded up to a
  /// multiple of the shard count (minimum one slot per shard);
  /// `epoch` anchors timestamps (pass the Tracer's epoch to correlate).
  explicit EventJournal(std::int64_t capacity,
                        std::chrono::steady_clock::time_point epoch =
                            std::chrono::steady_clock::now());

  EventJournal(const EventJournal&) = delete;
  EventJournal& operator=(const EventJournal&) = delete;

  /// Appends one event; never blocks on space (a full ring overwrites
  /// oldest-first).  `id` should be a telemetry/event_names.h constant.
  void Emit(LogLevel severity, std::string_view id,
            std::vector<std::pair<std::string, std::string>> payload = {});

  /// Events currently retained, sorted by strictly increasing `seq`.
  [[nodiscard]] std::vector<JournalEvent> Snapshot() const;

  /// {"events": [{"seq": ..., "t_us": ..., "severity": "...",
  ///   "id": "...", "payload": {...}}, ...], "emitted": N, "capacity": C}
  /// with events ordered by `seq` — what /flightz serves.
  [[nodiscard]] std::string DumpJson() const;

  /// Retained-event bound (post-rounding).
  [[nodiscard]] std::int64_t capacity() const { return capacity_; }
  /// Events emitted over the journal's lifetime (>= retained count).
  [[nodiscard]] std::int64_t total_emitted() const {
    return next_seq_.load(std::memory_order_relaxed);
  }
  /// Events lost to ring overwrites so far.
  [[nodiscard]] std::int64_t overwritten() const {
    const std::int64_t extra = total_emitted() - capacity_;
    return extra > 0 ? extra : 0;
  }

  [[nodiscard]] std::chrono::steady_clock::time_point epoch() const {
    return epoch_;
  }
  /// Microseconds elapsed since the journal's epoch.
  [[nodiscard]] std::int64_t NowMicros() const;

 private:
  static constexpr std::int64_t kShards = 8;

  struct Shard {
    mutable Mutex mu;
    // Ring indexed by (seq / kShards) % ring.size(); slots fill in shard
    // order, so each shard independently overwrites its own oldest.
    std::vector<JournalEvent> ring GUARDED_BY(mu);
    std::int64_t appended GUARDED_BY(mu) = 0;
  };

  std::chrono::steady_clock::time_point epoch_;
  std::int64_t capacity_ = 0;       // total slots across shards
  std::int64_t shard_capacity_ = 0; // slots per shard
  std::atomic<std::int64_t> next_seq_{0};
  Shard shards_[kShards];
};

/// Parses EventJournal::DumpJson output back into events (round-trip
/// tests and tooling over /flightz dumps).  Unknown top-level keys are
/// ignored.
Result<std::vector<JournalEvent>> ParseJournalJson(const std::string& json);

/// Installs (or, with null, removes) the fatal-log hook so a failed
/// FUSEME_CHECK dumps `journal`'s retained events (DumpJson) to stderr
/// before aborting — the flight recorder survives the crash.  The
/// journal must outlive the attachment; call
/// AttachJournalCrashDump(nullptr) before destroying it.
void AttachJournalCrashDump(EventJournal* journal);

}  // namespace fuseme

#endif  // FUSEME_TELEMETRY_EVENT_JOURNAL_H_
