#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy) over the library and bench sources
# using the compile_commands.json of a dedicated build directory.
#
# clang-tidy is optional tooling: when it is not installed this script
# prints a warning and exits 0 so check.sh still passes on toolchains that
# only ship gcc.
# Usage: scripts/run_tidy.sh [source-path-regex]
set -euo pipefail

cd "$(dirname "$0")/.."

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_tidy.sh: clang-tidy not found on PATH; skipping (install llvm/clang-tools to enable)" >&2
  exit 0
fi

BUILD_DIR=build-tidy
cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null

FILTER="${1:-.}"
mapfile -t SOURCES < <(find src bench examples -name '*.cc' | grep -E "$FILTER")
if [[ ${#SOURCES[@]} -eq 0 ]]; then
  echo "run_tidy.sh: no sources match '$FILTER'" >&2
  exit 1
fi

echo "clang-tidy over ${#SOURCES[@]} files..."
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -p "$BUILD_DIR" -quiet "${SOURCES[@]}"
else
  clang-tidy -p "$BUILD_DIR" --quiet "${SOURCES[@]}"
fi
echo "clang-tidy clean"
