// PlanVerifier: static invariant checks over every planner artifact.
//
// The CFG planner (paper Alg. 2/3), the subspace mapping (§3.1), and the
// cuboid optimizer (§3.3) rest on structural invariants the rest of the
// code assumes; this pass re-derives them independently and reports every
// violation as a structured VerifierDiagnostic instead of executing a
// well-formed-but-wrong plan.  Four artifact kinds are covered:
//
//   VerifyDag       shape/sparsity inference consistency of every node
//   VerifyPlan      fusion-region legality + L/R/O/MM subspace soundness
//   VerifyPlanSet   coverage / overlap / output reachability of a plan set
//   VerifyStageGraph execution-order sanity of the lowered stage sequence
//   VerifyCuboid    (P,Q,R) feasibility against the same MemEst the
//                   optimizer used
//
// The engine runs the passes behind EngineOptions::verify (DESIGN.md
// section 11); tests corrupt artifacts through the *_for_test mutation
// hooks and assert the exact rule that fires.

#ifndef FUSEME_VERIFY_PLAN_VERIFIER_H_
#define FUSEME_VERIFY_PLAN_VERIFIER_H_

#include <vector>

#include "cost/cost_model.h"
#include "fusion/planners.h"
#include "verify/diagnostic.h"

namespace fuseme {

class MetricsRegistry;  // telemetry/metrics.h

/// Stable rule identifiers (the `rule` field of VerifierDiagnostic).
namespace rules {

// --- DAG consistency -----------------------------------------------------
inline constexpr char kDagInputId[] = "dag-input-id";
inline constexpr char kDagArity[] = "dag-arity";
inline constexpr char kDagOperandKind[] = "dag-operand-kind";
inline constexpr char kDagShape[] = "dag-shape";
inline constexpr char kDagNnz[] = "dag-nnz";
inline constexpr char kDagSparsity[] = "dag-sparsity";

// --- Fusion-region legality ----------------------------------------------
inline constexpr char kPlanRoot[] = "plan-root";
inline constexpr char kPlanMemberId[] = "plan-member-id";
inline constexpr char kPlanMemberKind[] = "plan-member-kind";
inline constexpr char kPlanConnected[] = "plan-connected";
inline constexpr char kPlanInternalTermination[] =
    "plan-internal-termination";
inline constexpr char kPlanNoMatMul[] = "plan-no-matmul";

// --- Subspace-mapping soundness ------------------------------------------
inline constexpr char kPlanSubspaceUnique[] = "plan-subspace-unique";
inline constexpr char kPlanSubspaceAxes[] = "plan-subspace-axes";

// --- Plan-set structure ---------------------------------------------------
inline constexpr char kPlanSetCoverage[] = "planset-coverage";
inline constexpr char kPlanSetOverlap[] = "planset-overlap";
inline constexpr char kPlanSetOutput[] = "planset-output";

// --- Lowered stage graph --------------------------------------------------
inline constexpr char kStageOrder[] = "stage-order";
inline constexpr char kStageMissingInput[] = "stage-missing-input";
inline constexpr char kStageDuplicateRoot[] = "stage-duplicate-root";

// --- Cuboid feasibility ---------------------------------------------------
inline constexpr char kCuboidBounds[] = "cuboid-bounds";
inline constexpr char kCuboidKSplit[] = "cuboid-ksplit";
inline constexpr char kCuboidMemory[] = "cuboid-memory";

// --- Compiled artifacts ---------------------------------------------------
// Raised by CompiledPlan::FromJson (engine/compiled_plan.cc) while
// re-verifying a deserialized artifact; defined here so the ids live in
// the one stable catalogue diagnostics reference.
/// A stage names a solver the registry doesn't know, or one whose
/// operator kind disagrees with the stage's recorded kind.
inline constexpr char kCompiledSolver[] = "compiled-solver";
/// A stage carries neither a prediction nor a prediction error (or
/// both), so Execute could not replay it.
inline constexpr char kCompiledPrediction[] = "compiled-prediction";

}  // namespace rules

class PlanVerifier {
 public:
  /// `model` (not owned, may outlive checks) powers the cuboid rules;
  /// with a null model VerifyCuboid only checks the model-free rules.
  explicit PlanVerifier(const CostModel* model = nullptr) : model_(model) {}

  /// Shape/sparsity inference consistency: every node's input ids, arity,
  /// operand kinds, inferred shape, and estimated nnz must agree with an
  /// independent re-derivation from its inputs.
  std::vector<VerifierDiagnostic> VerifyDag(const Dag& dag) const;

  /// Fusion-region legality for one plan: members are in-range operator
  /// nodes forming a connected tree under the root, no internal member is
  /// a termination operator (multi-consumer / shuffle aggregation), and —
  /// when the plan has a matmul — every member maps into exactly one of
  /// L/R/O/MM with operand axes consistent with the seed's i×j×k space.
  /// `require_matmul` additionally demands ≥1 member matmul (CFG
  /// exploration/exploitation candidates grow from matmul seeds; final
  /// plan sets legitimately contain pure element-wise cell plans).
  std::vector<VerifierDiagnostic> VerifyPlan(
      const Dag& dag, const PartialPlan& plan,
      bool require_matmul = false) const;

  /// Plan-set structure: plans partition a subset of the operator nodes
  /// (no overlap), and every DAG output is a leaf or some plan's root.
  /// `require_coverage` additionally demands that *every* operator node is
  /// covered — an invariant of planner-generated sets (FinalizePlanSet),
  /// but not of caller-supplied single-plan sets.
  std::vector<VerifierDiagnostic> VerifyPlanSet(
      const Dag& dag, const FusionPlanSet& set,
      bool require_coverage = false) const;

  /// Lowered stage-graph sanity: stages execute in list order, so every
  /// matrix external input must be a DAG leaf or the root of an *earlier*
  /// plan, and no two stages may commit under the same root id (the
  /// engine's deterministic-commit key).
  std::vector<VerifierDiagnostic> VerifyStageGraph(
      const Dag& dag, const FusionPlanSet& set) const;

  /// Cuboid feasibility for an optimizer-chosen (P,Q,R): axis bounds
  /// within the plan's I×J×K block grid, R = 1 when the plan cannot split
  /// the common dimension, and MemEst(P,Q,R) within the per-task budget —
  /// the exact estimate the optimizer selected under.
  std::vector<VerifierDiagnostic> VerifyCuboid(const PartialPlan& plan,
                                               const Cuboid& c) const;

  /// Everything appropriate for `level` in one call: kOff returns empty;
  /// kPlanner and up runs VerifyDag + per-plan VerifyPlan + VerifyPlanSet
  /// + VerifyStageGraph.  (Cuboid checks are per-stage and run inside the
  /// engine at kParanoid, after the operator and its (P,Q,R) are chosen.)
  std::vector<VerifierDiagnostic> Verify(const Dag& dag,
                                         const FusionPlanSet& set,
                                         VerifyLevel level) const;

  /// Optional instrumentation: each check bumps
  /// fuseme_verifier_checks_total{artifact=...}; each diagnostic bumps
  /// fuseme_verifier_diagnostics_total{rule=...}.  Not owned; null
  /// disables.
  void set_metrics(MetricsRegistry* metrics);

 private:
  std::vector<VerifierDiagnostic> VerifyDagImpl(const Dag& dag) const;
  std::vector<VerifierDiagnostic> VerifyPlanImpl(const Dag& dag,
                                                 const PartialPlan& plan,
                                                 bool require_matmul) const;
  std::vector<VerifierDiagnostic> VerifyPlanSetImpl(
      const Dag& dag, const FusionPlanSet& set, bool require_coverage) const;
  std::vector<VerifierDiagnostic> VerifyStageGraphImpl(
      const Dag& dag, const FusionPlanSet& set) const;
  std::vector<VerifierDiagnostic> VerifyCuboidImpl(const PartialPlan& plan,
                                                   const Cuboid& c) const;
  void Record(const char* artifact,
              const std::vector<VerifierDiagnostic>& diags) const;

  const CostModel* model_;
  MetricsRegistry* metrics_ = nullptr;
};

}  // namespace fuseme

#endif  // FUSEME_VERIFY_PLAN_VERIFIER_H_
