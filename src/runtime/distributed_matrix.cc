#include "runtime/distributed_matrix.h"

#include <algorithm>
#include <set>

#include "common/logging.h"

namespace fuseme {

namespace {
// Effective bytes of serialized matrix data per RDD partition.  Calibrated
// below the raw 128 MB HDFS split size because SystemDS block RDDs carry
// substantial per-record overhead: with 16 MB the paper's observation that
// a 100K×100K, 0.001-density X yields ~13 partitions (§6.2) reproduces.
constexpr std::int64_t kSparkPartitionBytes = 16LL * 1024 * 1024;
}  // namespace

std::int64_t EstimateSparkPartitions(std::int64_t size_bytes,
                                     std::int64_t num_blocks) {
  const std::int64_t by_bytes =
      (size_bytes + kSparkPartitionBytes - 1) / kSparkPartitionBytes;
  return std::clamp<std::int64_t>(by_bytes, 1,
                                  std::max<std::int64_t>(num_blocks, 1));
}

DistributedMatrix DistributedMatrix::Create(BlockedMatrix blocks,
                                            PartitionScheme scheme,
                                            int num_tasks) {
  FUSEME_CHECK_GT(num_tasks, 0);
  DistributedMatrix out;
  out.blocks_ = std::move(blocks);
  out.scheme_ = scheme;
  out.num_tasks_ = num_tasks;
  return out;
}

int DistributedMatrix::Owner(std::int64_t bi, std::int64_t bj) const {
  FUSEME_CHECK(bi >= 0 && bi < blocks_.grid_rows());
  FUSEME_CHECK(bj >= 0 && bj < blocks_.grid_cols());
  switch (scheme_) {
    case PartitionScheme::kRow:
      return static_cast<int>(bi % num_tasks_);
    case PartitionScheme::kCol:
      return static_cast<int>(bj % num_tasks_);
    case PartitionScheme::kGrid:
      return static_cast<int>((bi * blocks_.grid_cols() + bj) % num_tasks_);
  }
  return 0;
}

int DistributedMatrix::NumActiveTasks() const {
  std::set<int> owners;
  for (std::int64_t bi = 0; bi < blocks_.grid_rows(); ++bi) {
    for (std::int64_t bj = 0; bj < blocks_.grid_cols(); ++bj) {
      if (blocks_.block(bi, bj).nnz() > 0 || blocks_.block(bi, bj).is_meta()) {
        owners.insert(Owner(bi, bj));
      }
    }
  }
  return static_cast<int>(owners.size());
}

std::int64_t DistributedMatrix::SparkPartitions() const {
  return EstimateSparkPartitions(blocks_.SizeBytes(), blocks_.num_blocks());
}

}  // namespace fuseme
