// Small string helpers used across modules (formatting sizes, joining).

#ifndef FUSEME_COMMON_STRING_UTIL_H_
#define FUSEME_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace fuseme {

/// Formats a byte count as a human-readable string, e.g. "1.50 GB".
std::string HumanBytes(double bytes);

/// Formats a duration in seconds, e.g. "2.5 min" / "36.0 sec" / "120 ms".
std::string HumanSeconds(double seconds);

/// Formats a count with thousands separators, e.g. "1,000,000".
std::string WithThousands(std::int64_t value);

/// Joins pieces with a separator.
std::string Join(const std::vector<std::string>& pieces,
                 const std::string& separator);

}  // namespace fuseme

#endif  // FUSEME_COMMON_STRING_UTIL_H_
