#!/usr/bin/env bash
# Smoke-runs the two measurement harnesses at tiny configurations and
# asserts that their BENCH_*.json result sinks are written and embed a
# metrics snapshot (see DESIGN.md section 12).  Used by scripts/check.sh
# when FUSEME_CHECK_BENCH=1; safe to run standalone.
# Usage: scripts/run_bench_smoke.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${1:-build}

if [[ ! -x "$BUILD_DIR/bench/bench_microkernels" ||
      ! -x "$BUILD_DIR/bench/bench_fig12_operators" ||
      ! -x "$BUILD_DIR/bench/bench_overlap" ||
      ! -x "$BUILD_DIR/bench/bench_sparse" ||
      ! -x "$BUILD_DIR/bench/bench_compile" ]]; then
  echo "error: bench binaries missing under $BUILD_DIR/bench -- build first" >&2
  exit 1
fi

# Small shapes so the smoke run takes seconds, not minutes.
export FUSEME_BENCH_GEMM_N=${FUSEME_BENCH_GEMM_N:-256}
export FUSEME_BENCH_CFO_N=${FUSEME_BENCH_CFO_N:-512}
export FUSEME_BENCH_OVERLAP_N=${FUSEME_BENCH_OVERLAP_N:-256}
export FUSEME_BENCH_SPARSE_N=${FUSEME_BENCH_SPARSE_N:-512}
export FUSEME_BENCH_COMPILE_N=${FUSEME_BENCH_COMPILE_N:-256}

SCRATCH=$(mktemp -d)
trap 'rm -rf "$SCRATCH"' EXIT

run_and_check() {
  local binary=$1 json=$2
  shift 2
  (cd "$SCRATCH" && "$binary" "$@" > "$SCRATCH/log.txt" 2>&1) || {
    echo "FAIL: $binary exited non-zero" >&2
    cat "$SCRATCH/log.txt" >&2
    exit 1
  }
  if [[ ! -s "$SCRATCH/$json" ]]; then
    echo "FAIL: $binary did not write $json" >&2
    exit 1
  fi
  for key in '"benchmark"' '"results"' '"metrics_snapshot"'; do
    if ! grep -q "$key" "$SCRATCH/$json"; then
      echo "FAIL: $json is missing $key" >&2
      exit 1
    fi
  done
  echo "ok: $json ($(wc -c < "$SCRATCH/$json") bytes, metrics embedded)"
}

# --benchmark_filter matching nothing skips the google-benchmark cases;
# the serial-vs-parallel GEMM suite (which feeds the registry) still runs.
run_and_check "$PWD/$BUILD_DIR/bench/bench_microkernels" \
  BENCH_microkernels.json --benchmark_filter='^$'
run_and_check "$PWD/$BUILD_DIR/bench/bench_fig12_operators" \
  BENCH_fig12_operators.json
# Serial vs double-buffered prefetch; exits non-zero if prefetching
# changes outputs or StageStats.
run_and_check "$PWD/$BUILD_DIR/bench/bench_overlap" BENCH_overlap.json
# Sparsity-aware kernels vs dense-style execution; exits non-zero if fewer
# than two cells show a speedup or the sparse-stage prediction drifts past 2x.
run_and_check "$PWD/$BUILD_DIR/bench/bench_sparse" BENCH_sparse.json
# Compile-once/execute-many facade; exits non-zero if a replayed Execute
# re-plans (solver/planner counters move) or diverges from the legacy Run.
run_and_check "$PWD/$BUILD_DIR/bench/bench_compile" BENCH_compile.json

echo "bench smoke passed"
