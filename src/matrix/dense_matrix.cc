#include "matrix/dense_matrix.h"

#include <algorithm>
#include <cmath>

namespace fuseme {

std::int64_t DenseMatrix::CountNonZeros() const {
  std::int64_t nnz = 0;
  for (double v : data_) {
    if (v != 0.0) ++nnz;
  }
  return nnz;
}

void DenseMatrix::Fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

DenseMatrix DenseMatrix::Transposed() const {
  DenseMatrix out(cols_, rows_);
  for (std::int64_t i = 0; i < rows_; ++i) {
    for (std::int64_t j = 0; j < cols_; ++j) {
      out(j, i) = (*this)(i, j);
    }
  }
  return out;
}

double DenseMatrix::MaxAbsDiff(const DenseMatrix& a, const DenseMatrix& b) {
  FUSEME_CHECK_EQ(a.rows(), b.rows());
  FUSEME_CHECK_EQ(a.cols(), b.cols());
  double max_diff = 0.0;
  for (std::int64_t i = 0; i < a.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(a.data()[i] - b.data()[i]));
  }
  return max_diff;
}

}  // namespace fuseme
