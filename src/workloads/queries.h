// Query builders for the paper's workloads.
//
// Each builder returns the DAG plus named node handles so tests can pin the
// plan shapes the paper reports (Fig. 10) and benches can locate inputs.

#ifndef FUSEME_WORKLOADS_QUERIES_H_
#define FUSEME_WORKLOADS_QUERIES_H_

#include <cstdint>

#include "ir/dag.h"

namespace fuseme {

/// One GNMF update step (paper Eq. 6, Fig. 10):
///   U' = U * (Vᵀ×X) / (Vᵀ×V×U),   V' = V * (X×Uᵀ) / (V×U×Uᵀ)
/// with X: m×n (sparse ratings), V: m×k, U: k×n.
///
/// Node names follow the paper's Fig. 10 modulo relabeling: vT/uT are the
/// shared transposes (materialization points), a1..a5 the U-side operators,
/// b1..b5 the V-side operators.
struct GnmfQuery {
  Dag dag;
  NodeId X, U, V;
  NodeId vT;              // r(T) of V, fanout 2
  NodeId a1;              // ba(x): Vᵀ × X        (U-side main matmul)
  NodeId a2;              // ba(x): Vᵀ × V        (the distant matmul)
  NodeId a3;              // b(*):  U * a1
  NodeId a4;              // ba(x): a2 × U
  NodeId a5;              // b(/):  a3 / a4       (U', output)
  NodeId uT;              // r(T) of U, fanout 2
  NodeId b1;              // ba(x): X × Uᵀ        (V-side main matmul)
  NodeId b2;              // b(*):  V * b1
  NodeId b3;              // ba(x): U × Uᵀ       (the distant matmul)
  NodeId b4;              // ba(x): V × b3
  NodeId b5;              // b(/):  b2 / b4       (V', output)
};
/// `matrix_chain_opt` controls the association of the V-side denominator
/// V×U×Uᵀ: optimized systems (SystemDS, FuseME, DistME) compute it through
/// the tiny k×k product V×(U×Uᵀ); systems without matrix-chain
/// optimization (MatFast) execute it as written, ((V×U)×Uᵀ), materializing
/// the enormous m×n product — the source of its Fig. 14 T.O./O.O.M. cells.
GnmfQuery BuildGnmf(std::int64_t m, std::int64_t n, std::int64_t k,
                    std::int64_t x_nnz, bool matrix_chain_opt = true);

/// The running example of §2.2/§3.2: O = X * log(U × Vᵀ + eps), X: I×J
/// sparse, U: I×K, V: J×K dense.
struct NmfPattern {
  Dag dag;
  NodeId X, U, V;
  NodeId vT;   // r(T) of V
  NodeId mm;   // ba(x): U × Vᵀ
  NodeId add;  // b(+eps)
  NodeId log;  // u(log)
  NodeId mul;  // b(*) with X — the sparse driver
};
NmfPattern BuildNmfPattern(std::int64_t i, std::int64_t j, std::int64_t k,
                           std::int64_t x_nnz, double eps = 1e-8);

/// ALS weighted squared loss (Fig. 1(a)): sum((X != 0) * (X - U×V)^2),
/// X: m×n sparse, U: m×k, V: k×n.
struct AlsLossQuery {
  Dag dag;
  NodeId X, U, V;
  NodeId mm;    // ba(x): U × V
  NodeId mask;  // u(!=0) of X
  NodeId sub;   // b(-): X - mm
  NodeId sq;    // u(^2)
  NodeId mul;   // b(*): mask * sq
  NodeId loss;  // ua(sum) — output
};
AlsLossQuery BuildAlsLoss(std::int64_t m, std::int64_t n, std::int64_t k,
                          std::int64_t x_nnz);

/// Generalized KL-divergence loss (paper §2.1 cites it as an Outer-fusion
/// client): sum((X != 0) * (X * log(X / (U×V)) - X + U×V)) for sparse X.
/// Only the masked positions contribute, so the fused operator evaluates
/// U×V at X's non-zeros only.
struct KlLossQuery {
  Dag dag;
  NodeId X, U, V;
  NodeId mm;    // ba(x): U × V
  NodeId loss;  // ua(sum) — output
};
KlLossQuery BuildKlLoss(std::int64_t m, std::int64_t n, std::int64_t k,
                        std::int64_t x_nnz);

/// PCA pattern (Fig. 2(b), Row fusion): (X × S)ᵀ × X, X: m×n, S: n×1.
struct PcaPattern {
  Dag dag;
  NodeId X, S;
  NodeId mm1;  // ba(x): X × S
  NodeId t;    // r(T)
  NodeId mm2;  // ba(x): t × X — output
};
PcaPattern BuildPcaPattern(std::int64_t m, std::int64_t n);

/// GNMF-style expression used by Fig. 1(c): (X×Vᵀ*U) / (Vᵀ×V×U).
/// X: m×n, V: n×k ... simplified to the paper's operator shape with
/// U: m×k, V: k×n (so X×T(V): m×k elementwise U, and T(V)×V: k... )
struct Fig1cQuery {
  Dag dag;
  NodeId X, U, V;
  NodeId out;
};
Fig1cQuery BuildFig1c(std::int64_t m, std::int64_t n, std::int64_t k,
                      std::int64_t x_nnz);

}  // namespace fuseme

#endif  // FUSEME_WORKLOADS_QUERIES_H_
