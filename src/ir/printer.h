// Human-readable renderings of query DAGs (text tree and Graphviz dot).

#ifndef FUSEME_IR_PRINTER_H_
#define FUSEME_IR_PRINTER_H_

#include <string>

#include "ir/dag.h"

namespace fuseme {

/// One line per node: "v3: b(*) [1000x1000, d=0.01] <- v1, v2".
std::string DagToString(const Dag& dag);

/// Graphviz dot output for visual inspection.
std::string DagToDot(const Dag& dag);

/// Infix rendering of the expression rooted at `id`, e.g.
/// "(X * log((U x T(V)) + 0.5))".
std::string ExprToString(const Dag& dag, NodeId id);

}  // namespace fuseme

#endif  // FUSEME_IR_PRINTER_H_
