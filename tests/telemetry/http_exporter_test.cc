// HTTP exporter: endpoint routing over live sources, and the end-to-end
// acceptance criterion — GET /metrics while an engine run is in flight
// returns a valid Prometheus exposition, and /flightz is well-formed
// JSON strictly ordered by sequence number.

#include "telemetry/http_exporter.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/http_server.h"
#include "engine/engine.h"
#include "matrix/generators.h"
#include "telemetry/event_journal.h"
#include "telemetry/event_names.h"
#include "telemetry/metrics.h"
#include "telemetry/sampler.h"
#include "workloads/queries.h"

namespace fuseme {
namespace {

class HttpExporterEndpoints : public ::testing::Test {
 protected:
  void SetUp() override {
    registry_.GetCounter("fuseme_test_events_total")->Add(3);
    journal_ = std::make_unique<EventJournal>(/*capacity=*/32);
    journal_->Emit(LogLevel::kInfo, event_names::kRunStart);
    journal_->Emit(LogLevel::kInfo, event_names::kRunFinish);
    sampler_ = std::make_unique<MetricsSampler>(
        &registry_, MetricsSampler::Options{.period_seconds = 1.0,
                                            .capacity = 8});
    sampler_->SampleNow();
    exporter_ = std::make_unique<HttpExporter>(
        HttpExporter::Options{.port = 0}, &registry_, journal_.get(),
        sampler_.get());
    const Status started = exporter_->Start();
    ASSERT_TRUE(started.ok()) << started;
    ASSERT_GT(exporter_->port(), 0);
  }

  std::string Get(const std::string& path) {
    Result<std::string> body = HttpGet(exporter_->port(), path);
    EXPECT_TRUE(body.ok()) << path << ": " << body.status();
    return body.ok() ? *body : "";
  }

  MetricsRegistry registry_;
  std::unique_ptr<EventJournal> journal_;
  std::unique_ptr<MetricsSampler> sampler_;
  std::unique_ptr<HttpExporter> exporter_;
};

TEST_F(HttpExporterEndpoints, Healthz) { EXPECT_EQ(Get("/healthz"), "ok\n"); }

TEST_F(HttpExporterEndpoints, MetricsIsValidPrometheus) {
  const std::string body = Get("/metrics");
  EXPECT_NE(body.find("fuseme_test_events_total"), std::string::npos);
  const Status valid = ValidatePrometheusText(body);
  EXPECT_TRUE(valid.ok()) << valid;
}

TEST_F(HttpExporterEndpoints, VarzRoundTripsThroughJsonParser) {
  Result<MetricsSnapshot> snapshot = ParseMetricsJson(Get("/varz"));
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();
  EXPECT_EQ(*snapshot, registry_.Snapshot());
}

TEST_F(HttpExporterEndpoints, FlightzIsOrderedJson) {
  Result<std::vector<JournalEvent>> events =
      ParseJournalJson(Get("/flightz"));
  ASSERT_TRUE(events.ok()) << events.status();
  ASSERT_EQ(events->size(), 2u);
  EXPECT_LT((*events)[0].seq, (*events)[1].seq);
  EXPECT_EQ((*events)[0].id, event_names::kRunStart);
}

TEST_F(HttpExporterEndpoints, SerieszMentionsTheSampledCounter) {
  const std::string body = Get("/seriesz");
  EXPECT_NE(body.find("\"taken\": 1"), std::string::npos);
  EXPECT_NE(body.find("fuseme_test_events_total"), std::string::npos);
}

TEST_F(HttpExporterEndpoints, UnknownPathIs404WithEndpointList) {
  Result<std::string> body = HttpGet(exporter_->port(), "/nope");
  ASSERT_FALSE(body.ok());
  EXPECT_NE(body.status().message().find("404"), std::string::npos);
}

TEST(HttpExporterTest, AbsentSourcesYield404) {
  MetricsRegistry registry;
  HttpExporter exporter(HttpExporter::Options{.port = 0}, &registry,
                        /*journal=*/nullptr, /*sampler=*/nullptr);
  ASSERT_TRUE(exporter.Start().ok());
  EXPECT_TRUE(HttpGet(exporter.port(), "/metrics").ok());
  EXPECT_FALSE(HttpGet(exporter.port(), "/flightz").ok());
  EXPECT_FALSE(HttpGet(exporter.port(), "/seriesz").ok());
}

// Acceptance criterion: with the observability plane enabled through
// EngineOptions, curling /metrics in the middle of a run yields a valid
// Prometheus exposition, concurrently with the engine's own threads.
TEST(HttpExporterTest, ServesWhileEngineRuns) {
  MetricsRegistry registry;
  EngineOptions options;
  options.cluster.num_nodes = 2;
  options.cluster.tasks_per_node = 3;
  options.cluster.block_size = 8;
  options.metrics = &registry;
  options.observability.journal_capacity = 256;
  options.observability.sample_period_seconds = 0.01;
  options.observability.exporter_port = 0;  // ephemeral

  Result<Engine> engine = Engine::Create(options);
  ASSERT_TRUE(engine.ok()) << engine.status();
  const int port = engine->exporter_port();
  ASSERT_GT(port, 0);

  GnmfQuery q = BuildGnmf(26, 20, 6, /*x_nnz=*/104);
  std::map<NodeId, BlockedMatrix> inputs;
  inputs[q.X] = BlockedMatrix::FromSparse(
      RandomSparse(26, 20, 0.2, /*seed=*/51, 1.0, 5.0), 8);
  inputs[q.V] =
      BlockedMatrix::FromDense(RandomDense(26, 6, /*seed=*/52, 0.5, 1.5), 8);
  inputs[q.U] =
      BlockedMatrix::FromDense(RandomDense(6, 20, /*seed=*/53, 0.5, 1.5), 8);

  // Drive runs on a worker thread while this thread curls the exporter.
  std::atomic<bool> done{false};
  std::thread runner([&] {
    for (int i = 0; i < 3; ++i) {
      Engine::RunResult run = engine->Run(q.dag, inputs);
      EXPECT_TRUE(run.report.ok()) << run.report.status;
    }
    done.store(true);
  });
  int fetched = 0;
  while (!done.load()) {
    Result<std::string> body = HttpGet(port, "/metrics");
    ASSERT_TRUE(body.ok()) << body.status();
    const Status valid = ValidatePrometheusText(*body);
    ASSERT_TRUE(valid.ok()) << valid;
    ++fetched;
  }
  runner.join();
  EXPECT_GT(fetched, 0);

  // After the runs: the flight recorder saw them, strictly seq-ordered.
  Result<std::string> flight = HttpGet(port, "/flightz");
  ASSERT_TRUE(flight.ok()) << flight.status();
  Result<std::vector<JournalEvent>> events = ParseJournalJson(*flight);
  ASSERT_TRUE(events.ok()) << events.status();
  ASSERT_FALSE(events->empty());
  for (std::size_t i = 1; i < events->size(); ++i) {
    ASSERT_LT((*events)[i - 1].seq, (*events)[i].seq);
  }
  bool saw_run_start = false;
  for (const JournalEvent& e : *events) {
    if (e.id == event_names::kRunStart) saw_run_start = true;
  }
  EXPECT_TRUE(saw_run_start);
}

}  // namespace
}  // namespace fuseme
