// Pins the plan shapes the paper reports (Fig. 10, §4).

#include "fusion/planners.h"

#include <gtest/gtest.h>

#include "workloads/queries.h"

namespace fuseme {
namespace {

ClusterConfig PaperishCluster() {
  ClusterConfig config;
  config.num_nodes = 8;
  config.tasks_per_node = 12;
  config.block_size = 1000;
  return config;
}

// Paper-scale GNMF (Netflix-like): m=480K users, n=17.7K items, k=200.
GnmfQuery PaperGnmf() {
  return BuildGnmf(480000, 17700, 200, /*x_nnz=*/100480507);
}

std::set<NodeId> Members(const PartialPlan& p) {
  return {p.members().begin(), p.members().end()};
}

const PartialPlan* FindPlanWith(const FusionPlanSet& set, NodeId member) {
  for (const PartialPlan& p : set.plans) {
    if (p.Contains(member)) return &p;
  }
  return nullptr;
}

TEST(TerminationTest, MaterializationPointsAndAggs) {
  GnmfQuery q = PaperGnmf();
  // Shared transposes have fanout 2: termination.
  EXPECT_TRUE(IsTerminationOperator(q.dag, q.vT));
  EXPECT_TRUE(IsTerminationOperator(q.dag, q.uT));
  // Mid-plan operators are not.
  EXPECT_FALSE(IsTerminationOperator(q.dag, q.a1));
  EXPECT_FALSE(IsTerminationOperator(q.dag, q.a3));
  // Aggregations are.
  AlsLossQuery als = BuildAlsLoss(100, 100, 10, 100);
  EXPECT_TRUE(IsTerminationOperator(als.dag, als.loss));
}

TEST(CfgExplorationTest, GnmfFindsTwoFivеMemberPlans) {
  GnmfQuery q = PaperGnmf();
  CostModel model(PaperishCluster());
  CfgPlanner planner(&model);
  std::vector<PartialPlan> plans = planner.ExplorationPhase(q.dag);
  ASSERT_EQ(plans.size(), 2u);
  // Paper Fig. 10(a): F1 = {v1..v5} (U side), F0 = {v7..v11} (V side),
  // excluding the shared transposes.
  EXPECT_EQ(Members(plans[0]),
            (std::set<NodeId>{q.a1, q.a2, q.a3, q.a4, q.a5}));
  EXPECT_EQ(Members(plans[1]),
            (std::set<NodeId>{q.b1, q.b2, q.b3, q.b4, q.b5}));
  EXPECT_EQ(plans[0].root(), q.a5);
  EXPECT_EQ(plans[1].root(), q.b5);
}

TEST(CfgExploitationTest, GnmfSplitsDistantMatMuls) {
  // Paper Fig. 10(b): F1 splits off v2 (= a2, the Vᵀ×V far from the main
  // matmul) and F0 splits off its distant matmul.
  GnmfQuery q = PaperGnmf();
  CostModel model(PaperishCluster());
  CfgPlanner planner(&model);
  auto refined =
      planner.ExploitationPhase(q.dag, planner.ExplorationPhase(q.dag));
  // a2 must now live in its own plan.
  const PartialPlan* a2_plan = nullptr;
  const PartialPlan* a5_plan = nullptr;
  for (const PartialPlan& p : refined) {
    if (p.Contains(q.a2)) a2_plan = &p;
    if (p.Contains(q.a5)) a5_plan = &p;
  }
  ASSERT_NE(a2_plan, nullptr);
  ASSERT_NE(a5_plan, nullptr);
  EXPECT_NE(a2_plan, a5_plan) << "a2 should be split from the U-side plan";
  EXPECT_EQ(a2_plan->size(), 1);
  // F1' keeps {a1, a3, a4, a5} fused (paper keeps v1,v3,v4,v5 together).
  EXPECT_EQ(Members(*a5_plan), (std::set<NodeId>{q.a1, q.a3, q.a4, q.a5}));
}

TEST(CfgPlannerTest, FullCoverageAndOrder) {
  GnmfQuery q = PaperGnmf();
  CostModel model(PaperishCluster());
  CfgPlanner planner(&model);
  FusionPlanSet set = planner.Plan(q.dag);

  // Every operator node appears in exactly one plan.
  std::map<NodeId, int> seen;
  for (const PartialPlan& p : set.plans) {
    for (NodeId m : p.members()) seen[m]++;
  }
  for (NodeId id : q.dag.TopologicalOrder()) {
    const Node& n = q.dag.node(id);
    if (n.kind == OpKind::kInput || n.kind == OpKind::kScalar) continue;
    EXPECT_EQ(seen[id], 1) << "node v" << id;
  }
  // Producers come before consumers.
  std::set<NodeId> produced;
  for (const PartialPlan& p : set.plans) {
    for (NodeId ext : p.ExternalInputs()) {
      const Node& n = q.dag.node(ext);
      if (n.kind == OpKind::kInput || n.kind == OpKind::kScalar) continue;
      EXPECT_TRUE(produced.contains(ext))
          << "plan " << p.ToString() << " consumes unmaterialized v" << ext;
    }
    produced.insert(p.root());
  }
}

TEST(CfgExplorationTest, AlsLossFusesEverythingUnderTheSum) {
  AlsLossQuery q = BuildAlsLoss(100000, 20000, 200, /*x_nnz=*/2000000);
  CostModel model(PaperishCluster());
  CfgPlanner planner(&model);
  auto plans = planner.ExplorationPhase(q.dag);
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_EQ(Members(plans[0]),
            (std::set<NodeId>{q.mm, q.mask, q.sub, q.sq, q.mul, q.loss}));
  EXPECT_EQ(plans[0].root(), q.loss);  // agg joins as the top operator
}

TEST(GenPlannerTest, GnmfFusesOnlyElementwisePairs) {
  // Paper §1/Fig. 10: "SystemDS fuses only two operators v3 and v5".
  GnmfQuery q = PaperGnmf();
  FusionPlanSet set = GenPlanner().Plan(q.dag);
  const PartialPlan* a3_plan = FindPlanWith(set, q.a3);
  ASSERT_NE(a3_plan, nullptr);
  EXPECT_EQ(Members(*a3_plan), (std::set<NodeId>{q.a3, q.a5}));
  const PartialPlan* b2_plan = FindPlanWith(set, q.b2);
  ASSERT_NE(b2_plan, nullptr);
  EXPECT_EQ(Members(*b2_plan), (std::set<NodeId>{q.b2, q.b5}));
  // Matmuls stay singletons.
  const PartialPlan* a1_plan = FindPlanWith(set, q.a1);
  ASSERT_NE(a1_plan, nullptr);
  EXPECT_EQ(a1_plan->size(), 1);
}

TEST(GenPlannerTest, OuterTemplateFiresOnSparseMask) {
  // X * log(U×Vᵀ + eps) with sparse X: GEN fuses the matmul too.
  NmfPattern q = BuildNmfPattern(100000, 100000, 2000,
                                 /*x_nnz=*/10000000);  // density 0.001
  FusionPlanSet set = GenPlanner().Plan(q.dag);
  const PartialPlan* mm_plan = FindPlanWith(set, q.mm);
  ASSERT_NE(mm_plan, nullptr);
  EXPECT_TRUE(mm_plan->Contains(q.mul));
  EXPECT_TRUE(mm_plan->Contains(q.log));
  EXPECT_TRUE(mm_plan->Contains(q.add));
}

TEST(GenPlannerTest, OuterTemplateSkipsDenseMask) {
  NmfPattern q = BuildNmfPattern(10000, 10000, 200,
                                 /*x_nnz=*/50000000);  // density 0.5
  FusionPlanSet set = GenPlanner().Plan(q.dag);
  const PartialPlan* mm_plan = FindPlanWith(set, q.mm);
  ASSERT_NE(mm_plan, nullptr);
  EXPECT_EQ(mm_plan->size(), 1) << "dense mask: no sparsity exploitation";
  // The element-wise chain still folds via the Cell template.
  const PartialPlan* mul_plan = FindPlanWith(set, q.mul);
  ASSERT_NE(mul_plan, nullptr);
  EXPECT_TRUE(mul_plan->Contains(q.log));
}

TEST(GenPlannerTest, OuterTemplateAbsorbsMaskBranchAndAgg) {
  // Weighted loss (Fig. 1(b)): GEN fuses mask, chain, matmul, and sum.
  AlsLossQuery q = BuildAlsLoss(100000, 20000, 200, /*x_nnz=*/2000000);
  FusionPlanSet set = GenPlanner().Plan(q.dag);
  const PartialPlan* plan = FindPlanWith(set, q.mm);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(Members(*plan),
            (std::set<NodeId>{q.mm, q.mask, q.sub, q.sq, q.mul, q.loss}));
}

TEST(FoldedPlannerTest, OnlyEwiseChainsFold) {
  GnmfQuery q = PaperGnmf();
  FusionPlanSet set = FoldedPlanner().Plan(q.dag);
  const PartialPlan* a3_plan = FindPlanWith(set, q.a3);
  ASSERT_NE(a3_plan, nullptr);
  EXPECT_EQ(Members(*a3_plan), (std::set<NodeId>{q.a3, q.a5}));
  for (const PartialPlan& p : set.plans) {
    if (p.size() > 1) {
      for (NodeId m : p.members()) {
        const Node& n = q.dag.node(m);
        EXPECT_TRUE(n.kind == OpKind::kUnary || n.kind == OpKind::kBinary);
      }
    }
  }
}

TEST(NoFusionPlannerTest, AllSingletons) {
  GnmfQuery q = PaperGnmf();
  FusionPlanSet set = NoFusionPlanner().Plan(q.dag);
  EXPECT_EQ(set.plans.size(), 12u);  // 12 operators in the GNMF step
  for (const PartialPlan& p : set.plans) {
    EXPECT_EQ(p.size(), 1);
  }
}

TEST(PlannersTest, Fig1cCfgFusesAllFourOperatorsPlusMatmuls) {
  // (X×Vᵀ*U)/(Vᵀ×V×U): GEN folds only {*, /}; CFG fuses matmuls too.
  Fig1cQuery q = BuildFig1c(100000, 100000, 100, /*x_nnz=*/10000000);
  CostModel model(PaperishCluster());
  FusionPlanSet gen = GenPlanner().Plan(q.dag);
  FusionPlanSet cfg = CfgPlanner(&model).Plan(q.dag);

  auto largest = [](const FusionPlanSet& set) {
    std::int64_t best = 0;
    for (const PartialPlan& p : set.plans) best = std::max(best, p.size());
    return best;
  };
  EXPECT_EQ(largest(gen), 2);  // only the element-wise pair
  EXPECT_GE(largest(cfg), 3);  // matmuls participate
}

}  // namespace
}  // namespace fuseme
