# Empty dependencies file for bench_fig12_operators.
# This may be replaced when dependencies are built.
