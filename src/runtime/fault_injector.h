// Deterministic fault injection and recovery policy (DESIGN.md section 13).
//
// The paper's experiments report O.O.M. and T.O. cells as terminal
// outcomes, but a production engine must survive lost tasks, memory
// pressure, and stragglers.  This header is the runtime vocabulary for
// that machinery:
//
//  * FaultSpec / FaultInjector — a seeded fault schedule.  Every decision
//    is a pure function of (seed, stage ordinal, item, attempt), so a
//    schedule replays bit-for-bit regardless of thread interleaving, and
//    tests can recompute the exact retry counters the engine must report.
//  * RetryPolicy — per-work-item attempt budget with exponential backoff.
//    Backoff is *modeled* cluster time (fed to the Simulator's clock), not
//    host sleeping, so fault runs stay fast and deterministic.
//  * StageRecovery — what one stage's recovery actually did: attempts,
//    retries, injected faults, backoff, stragglers, degradations.
//
// The injector only ever *schedules* faults; surviving them is the job of
// the work-item retry loop (ops/fused_operator.cc), the engine's OOM
// degradation ladder (engine/engine.cc), and the simulator's speculative
// re-execution model (runtime/simulator.cc).

#ifndef FUSEME_RUNTIME_FAULT_INJECTOR_H_
#define FUSEME_RUNTIME_FAULT_INJECTOR_H_

#include <cstdint>
#include <set>
#include <vector>

namespace fuseme {

/// How an injected task failure strikes a work item.
enum class InjectedFault {
  kNone = 0,
  /// The task is lost before doing any work (a container that never
  /// started) — the cheap failure.
  kLostAtLaunch,
  /// The task finishes its compute but dies before committing; its
  /// buffered outputs and unflushed accounting must be discarded — the
  /// failure that exercises rollback.
  kLostBeforeCommit,
};

/// A deterministic fault schedule (everything off by default).
struct FaultSpec {
  std::uint64_t seed = 0;
  /// Per-work-item-attempt probability of an injected task failure, in
  /// [0, 1].  The failure point (launch vs. pre-commit) is drawn from the
  /// same hash, so both rollback paths get exercised.
  double task_failure_probability = 0.0;
  /// Stage ordinals (0-based execution order) where a synthetic
  /// OutOfMemory fires on the stage's first execution attempt, driving
  /// the engine's degradation ladder.
  std::vector<int> oom_stages;
  /// Per-task probability that a task is a straggler, in [0, 1].
  double straggler_probability = 0.0;
  /// Slowdown factor applied to a straggling task (>= 1).
  double straggler_slowdown = 4.0;

  bool enabled() const {
    return task_failure_probability > 0.0 || !oom_stages.empty() ||
           straggler_probability > 0.0;
  }
};

/// Pure-function fault oracle over a FaultSpec.  Thread-safe (const and
/// stateless after construction); decisions never depend on call order.
class FaultInjector {
 public:
  explicit FaultInjector(FaultSpec spec);

  const FaultSpec& spec() const { return spec_; }

  /// Whether (and how) attempt `attempt` of work item `item` in stage
  /// `stage` is killed.
  InjectedFault TaskFault(int stage, std::int64_t item, int attempt) const;

  /// Whether a synthetic OutOfMemory fires on `stage`'s first attempt.
  bool InjectOom(int stage) const { return oom_stages_.contains(stage); }

  /// Slowdown factor for `task` of `stage`: spec().straggler_slowdown for
  /// scheduled stragglers, 1.0 for healthy tasks.
  double StragglerFactor(int stage, std::int64_t task) const;

 private:
  /// Uniform draw in [0, 1) from (seed, a, b, c).
  double Uniform(std::uint64_t a, std::uint64_t b, std::uint64_t c) const;

  FaultSpec spec_;
  std::set<int> oom_stages_;
};

/// Retry budget for work items killed by injected faults.  Genuine
/// statuses (OutOfMemory, Internal, ...) are deterministic in this engine
/// and are never retried at item level — OOM recovers via the engine's
/// degradation ladder instead.
struct RetryPolicy {
  /// Total attempts per work item (>= 1); 1 disables retry.
  int max_attempts = 3;
  /// Modeled backoff before retry i is base * 2^i seconds, capped below.
  double backoff_base_seconds = 1.0;
  double backoff_max_seconds = 60.0;

  /// Backoff charged before the (retry_index+1)-th re-launch (0-based).
  double BackoffSeconds(int retry_index) const;
};

/// Aggregated recovery record of one stage (a fresh one per execution
/// attempt of the stage; the engine keeps the final attempt's record and
/// folds ladder-level counts on top).
struct StageRecovery {
  /// Work-item attempts, first tries included (== item count on a clean
  /// run — the baseline the retry counters are read against).
  std::int64_t attempts = 0;
  /// Attempts beyond each item's first (attempts - items).
  std::int64_t retries = 0;
  /// Injected task failures absorbed (== retries unless a budget ran out).
  std::int64_t injected_failures = 0;
  /// Work items whose attempt budget was exhausted (fails the stage).
  std::int64_t exhausted_items = 0;
  /// Synthetic OutOfMemory injections consumed by this stage.
  std::int64_t injected_oom = 0;
  /// Modeled backoff seconds accumulated across retries.
  double backoff_seconds = 0.0;
  /// Tasks the schedule slowed down, and the worst factor among them.
  std::int64_t stragglers = 0;
  double max_straggler_factor = 1.0;
  /// Speculative copies the simulator launched to cut the straggler tail.
  std::int64_t speculative_tasks = 0;
  /// OOM degradation rungs taken before this stage completed.
  std::int64_t degradations = 0;

  bool any() const {
    return retries > 0 || injected_failures > 0 || exhausted_items > 0 ||
           injected_oom > 0 || stragglers > 0 || speculative_tasks > 0 ||
           degradations > 0;
  }
};

}  // namespace fuseme

#endif  // FUSEME_RUNTIME_FAULT_INJECTOR_H_
