#include "workloads/datasets.h"

#include <cstdio>

namespace fuseme {

const std::vector<RatingDataset>& PaperDatasets() {
  static const std::vector<RatingDataset>& datasets =
      *new std::vector<RatingDataset>{
          {"MovieLens", 283228, 58098, 27753444},
          {"Netflix", 480189, 17770, 100480507},
          {"YahooMusic", 1823179, 136736, 717872016},
      };
  return datasets;
}

const RatingDataset* FindDataset(const std::string& name) {
  for (const RatingDataset& d : PaperDatasets()) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

std::vector<SyntheticSpec> VaryTwoLargeDimensions() {
  std::vector<SyntheticSpec> out;
  for (std::int64_t n : {100000, 250000, 500000, 750000}) {
    out.push_back({std::to_string(n / 1000) + "K", n, n, 2000, 0.001});
  }
  return out;
}

std::vector<SyntheticSpec> VaryCommonDimension() {
  std::vector<SyntheticSpec> out;
  for (std::int64_t n : {2000, 5000, 10000, 50000}) {
    out.push_back(
        {std::to_string(n / 1000) + "K", 100000, 100000, n, 0.2});
  }
  return out;
}

std::vector<SyntheticSpec> VaryDensity() {
  std::vector<SyntheticSpec> out;
  for (double d : {0.05, 0.1, 0.5, 1.0}) {
    char label[16];
    std::snprintf(label, sizeof(label), "%.2f", d);
    out.push_back({label, 100000, 100000, 2000, d});
  }
  return out;
}

}  // namespace fuseme
