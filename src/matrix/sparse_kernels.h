// Sparsity-aware block kernels (DESIGN.md section 15).
//
// CSR-direct SpMM / SDDMM / transpose-SpMM kernels behind MatMulAcc and
// the evaluator's masked paths.  All kernels
//
//  * iterate the CSR arrays directly (row_ptr/col_idx/values) instead of
//    per-entry binary searches,
//  * parallelize over disjoint output-row slabs on the GlobalThreadPool
//    when the estimated FLOPs clear kSparseParallelFlops (mirroring the
//    dense GEMM's kGemmParallelFlops guard), and
//  * preserve the serial per-output-element accumulation order (ascending
//    k), so results are bitwise-identical for every thread count.
//
// The kernels also maintain process-wide relaxed-atomic counters
// (SparseKernelStatsSnapshot).  src/matrix cannot depend on telemetry, so
// the distributed operators snapshot these before/after a stage and feed
// the deltas into the fuseme_kernel_sparse_* metric families.

#ifndef FUSEME_MATRIX_SPARSE_KERNELS_H_
#define FUSEME_MATRIX_SPARSE_KERNELS_H_

#include <cstdint>
#include <vector>

#include "matrix/block.h"
#include "matrix/dense_matrix.h"
#include "matrix/sparse_matrix.h"

namespace fuseme {

/// Below this many estimated FLOPs the fork/join overhead beats the
/// parallel gain (same crossover as the dense GEMM's guard).
inline constexpr std::int64_t kSparseParallelFlops = 1 << 23;

/// Row-slab width for the parallel sparse kernels.  Slabs are claimed
/// dynamically by ParallelFor, so nnz skew between slabs load-balances
/// without a weighted split.
inline constexpr std::int64_t kSparseRowSlab = 64;

/// Process-wide sparse-kernel counters (monotonic; relaxed atomics).
struct SparseKernelStats {
  std::int64_t spmm_sparse_dense_calls = 0;
  std::int64_t spmm_dense_sparse_calls = 0;
  std::int64_t spmm_sparse_sparse_calls = 0;
  std::int64_t transpose_spmm_calls = 0;
  std::int64_t sddmm_calls = 0;
  std::int64_t ewise_merge_join_calls = 0;
  /// FLOPs executed by the kernels above.
  std::int64_t flops = 0;
  /// Dot-product segments (mask non-zeros x k-blocks) evaluated by SDDMM.
  std::int64_t sddmm_dots = 0;
  /// Kernel invocations that split over the global thread pool.
  std::int64_t parallel_launches = 0;
};

/// Current totals.  Per-stage deltas: snapshot before and after.
SparseKernelStats SparseKernelStatsSnapshot();

/// acc += a · b for CSR a and dense b (row-parallel SpMM).  Charges
/// 2·nnz(a)·cols(b) to *flops.
void SpmmAccSparseDense(DenseMatrix* acc, const SparseMatrix& a,
                        const DenseMatrix& b, std::int64_t* flops);

/// acc += a · b for dense a and CSR b.  i-outer row-streaming loop: each
/// output row streams through a's row i while expanding b's rows, so both
/// reads and writes are contiguous.  Per output element the k
/// contributions accumulate in ascending order — the same order as the
/// k-outer formulation.  Charges 2·rows(a)·nnz(b) to *flops.
void SpmmAccDenseSparse(DenseMatrix* acc, const DenseMatrix& a,
                        const SparseMatrix& b, std::int64_t* flops);

/// acc += a · b for CSR a and CSR b (row-parallel expansion).  Charges
/// 2·(products actually formed) to *flops.
void SpmmAccSparseSparse(DenseMatrix* acc, const SparseMatrix& a,
                         const SparseMatrix& b, std::int64_t* flops);

/// acc += aᵀ · b without materializing the transpose: a is stored
/// untransposed (rows(a) is the contraction dimension) and b is a real
/// block (dense, sparse, or zero).  Output rows — a's columns — are
/// partitioned into slabs; each slab scans a once and processes only the
/// entries whose column lands in the slab, so writes stay disjoint and
/// the per-element accumulation order (ascending k = a's row index)
/// matches what SpmmAcc* would produce on the materialized transpose.
void TransposeSpmmAcc(DenseMatrix* acc, const SparseMatrix& a,
                      const Block& b, std::int64_t* flops);

/// SDDMM accumulation step: for each stored position (i, j) of `mask`
/// (pattern only — values are not read), adds dot(a row i, b column j) to
/// acc[p] where p is the position's CSR index in mask.  a and b are real
/// blocks with a.cols() == b.rows(); every k term is added, zeros
/// included, in ascending k order — bitwise-identical to an element-wise
/// evaluation of the product.  Callers accumulate across k-blocks by
/// invoking this once per block pair.  Charges 2·nnz(mask)·a.cols().
void SddmmAcc(const SparseMatrix& mask, const Block& a, const Block& b,
              std::vector<double>* acc, std::int64_t* flops);

/// Element-wise product of two CSR matrices by per-row sorted merge-join
/// (no per-entry binary search).  Explicit zeros in the product are
/// dropped.  Charges min(nnz(a), nnz(b)) to *flops — the intersection
/// bound the meta estimator uses.
SparseMatrix EwiseMulMergeJoin(const SparseMatrix& a, const SparseMatrix& b,
                               std::int64_t* flops);

}  // namespace fuseme

#endif  // FUSEME_MATRIX_SPARSE_KERNELS_H_
