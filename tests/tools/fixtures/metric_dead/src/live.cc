// References kLive only; kDead stays unreferenced on purpose.

#include "telemetry/metric_names.h"

namespace fixture {

const char* Live() { return fuseme::metric_names::kLive; }

}  // namespace fixture
