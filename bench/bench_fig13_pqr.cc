// Figure 13: (P,Q,R) parameter optimization.
//  (a) Cost() while sweeping (P,R) at Q=4 on 1M × 5K × 1M;
//  (b) transferred data for the same sweep;
//  (c) modeled elapsed time for the same sweep;
//  (d) wall-clock time of the exhaustive vs pruning parameter search as
//      the voxel count grows.

#include <chrono>
#include <functional>
#include <cstdio>

#include "bench_util.h"
#include "cost/optimizer.h"
#include "workloads/queries.h"

using namespace fuseme;         // NOLINT
using namespace fuseme::bench;  // NOLINT

namespace {

double WallMs(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

}  // namespace

int main() {
  std::printf("=== Figure 13: optimization of (P,Q,R) ===\n\n");

  // The paper's instance: 1M × 5K × 1M, i.e. U: 1M×5K, V: 1M×5K,
  // X: 1M×1M sparse.
  const std::int64_t n = 1000000, k = 5000;
  NmfPattern q =
      BuildNmfPattern(n, n, k, static_cast<std::int64_t>(0.001 * n * n));
  PartialPlan plan(&q.dag, {q.vT, q.mm, q.add, q.log, q.mul}, q.mul);

  ClusterConfig cluster;  // paper defaults
  CostModel model(cluster);
  PqrOptimizer optimizer(&model);

  PqrChoice best = optimizer.Pruned(plan);
  std::printf("optimizer's choice: (P*,Q*,R*) = %s, Cost() = %.3f\n\n",
              best.c.ToString().c_str(), best.cost);

  std::printf(
      "--- Fig 13(a-c): sweep around the optimum (Q fixed to %lld) ---\n",
      static_cast<long long>(best.c.Q));
  PrintRow({"(P,R)", "Cost()", "data (GB)", "elapsed"});
  PrintRule(4);

  EngineOptions options;
  options.analytic = true;
  Engine engine(options);
  FusionPlanSet full;
  full.plans.push_back(plan);

  double best_swept_cost = 1e300;
  Cuboid best_swept;
  const std::int64_t q_fix = best.c.Q;
  for (auto [p, r] : std::vector<std::pair<std::int64_t, std::int64_t>>{
           {best.c.P + 6, best.c.R},
           {best.c.P + 4, best.c.R},
           {best.c.P + 2, best.c.R},
           {best.c.P, best.c.R},
           {best.c.P + 2, best.c.R - 1},
           {best.c.P + 4, best.c.R - 2},
           {best.c.P + 6, best.c.R - 2}}) {
    if (p < 1 || r < 1) continue;
    Cuboid c{p, q_fix, r};
    const double cost = model.Cost(c, plan);
    const double gb = model.NetEst(c, plan) / 1e9;
    // Elapsed through the simulator for this forced parameter set.
    StageStats stats;
    stats.num_tasks = static_cast<int>(c.volume());
    stats.consolidation_bytes =
        static_cast<std::int64_t>(model.NetEst(c, plan));
    stats.flops = static_cast<std::int64_t>(model.ComEst(c, plan));
    Simulator sim(cluster);
    const double elapsed = sim.EstimateStageSeconds(stats);
    char cell_c[32], cell_g[32], cell_e[32], cell_pr[64];
    std::snprintf(cell_pr, sizeof(cell_pr), "(%lld,%lld)",
                  static_cast<long long>(p), static_cast<long long>(r));
    std::snprintf(cell_c, sizeof(cell_c), "%.3f", cost);
    std::snprintf(cell_g, sizeof(cell_g), "%.1f", gb);
    std::snprintf(cell_e, sizeof(cell_e), "%.1f s", elapsed);
    PrintRow({cell_pr, cell_c, cell_g, cell_e});
    if (cost < best_swept_cost) {
      best_swept_cost = cost;
      best_swept = c;
    }
  }
  std::printf("\nswept minimum at %s — %s the optimizer's pick\n\n",
              best_swept.ToString().c_str(),
              best_swept == best.c ? "matches" : "DIFFERS FROM");

  std::printf("--- Fig 13(d): exhaustive vs pruning search time ---\n");
  PrintRow({"voxels", "exhaustive", "(evals)", "pruning", "(evals)"});
  PrintRule(5);
  // Growing I×J×K grids (in blocks).
  for (std::int64_t side : {140, 320, 360, 500, 710, 1000, 1410}) {
    const std::int64_t dim = side * cluster.block_size;
    NmfPattern sq = BuildNmfPattern(
        dim, dim, 2 * cluster.block_size,
        static_cast<std::int64_t>(0.001 * dim * dim));
    PartialPlan splan(&sq.dag, {sq.vT, sq.mm, sq.add, sq.log, sq.mul},
                      sq.mul);
    CostModel smodel(cluster);
    PqrOptimizer sopt(&smodel);
    const GridDims g = smodel.Grid(splan);
    PqrChoice ex, pr;
    const double ex_ms = WallMs([&] { ex = sopt.Exhaustive(splan); });
    const double pr_ms = WallMs([&] { pr = sopt.Pruned(splan); });
    char voxels[32], exc[32], prc[32];
    std::snprintf(voxels, sizeof(voxels), "%lldK",
                  static_cast<long long>(g.I * g.J * g.K / 1000));
    std::snprintf(exc, sizeof(exc), "%.1f ms", ex_ms);
    std::snprintf(prc, sizeof(prc), "%.1f ms", pr_ms);
    PrintRow({voxels, exc, std::to_string(ex.evaluations), prc,
              std::to_string(pr.evaluations)});
    if (ex.feasible && pr.feasible && pr.cost > ex.cost * (1 + 1e-9)) {
      std::printf("!! pruning missed the optimum (%f vs %f)\n", pr.cost,
                  ex.cost);
      return 1;
    }
  }
  return 0;
}
