// Tests for the capability-annotated synchronization primitives.
//
// The static half of the contract (GUARDED_BY violations rejected at
// compile time) is covered by the compile-failure harness in
// tests/tools/; these tests cover the dynamic half — the wrappers must
// behave exactly like the std primitives they replace — plus a hammer
// that gives TSan the same coverage raw mutexes had (scripts/run_tsan.sh
// includes Synchronization in its test regex).

#include "common/synchronization.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace fuseme {
namespace {

TEST(SynchronizationTest, TryLockReflectsOwnership) {
  Mutex mu;
  ASSERT_TRUE(mu.TryLock());
  // A second acquisition attempt from another thread must fail while the
  // mutex is held (try_lock on the owning thread would be UB).
  bool second = true;
  std::thread prober([&] { second = mu.TryLock(); });
  prober.join();
  EXPECT_FALSE(second);
  mu.Unlock();
  std::thread reprober([&] {
    if (mu.TryLock()) {
      mu.Unlock();
    } else {
      ADD_FAILURE() << "TryLock failed on a free mutex";
    }
  });
  reprober.join();
}

TEST(SynchronizationTest, MutexLockExcludesConcurrentHolder) {
  Mutex mu;
  bool probed = true;
  {
    MutexLock lock(mu);
    std::thread prober([&] { probed = mu.TryLock(); });
    prober.join();
    EXPECT_FALSE(probed) << "MutexLock scope did not hold the mutex";
  }
  // Destructor released: now acquirable.
  std::thread prober([&] {
    probed = mu.TryLock();
    if (probed) mu.Unlock();
  });
  prober.join();
  EXPECT_TRUE(probed) << "MutexLock destructor did not release the mutex";
}

TEST(SynchronizationTest, MutexLockMidScopeUnlockRelock) {
  Mutex mu;
  MutexLock lock(mu);
  lock.Unlock();
  // While released, another thread can take and drop the mutex.
  bool probed = false;
  std::thread prober([&] {
    probed = mu.TryLock();
    if (probed) mu.Unlock();
  });
  prober.join();
  EXPECT_TRUE(probed) << "mid-scope Unlock did not release the mutex";
  lock.Lock();  // scope must end re-acquired (destructor releases)
  std::thread reprober([&] { probed = mu.TryLock(); });
  reprober.join();
  EXPECT_FALSE(probed) << "mid-scope Lock did not re-acquire the mutex";
}

TEST(SynchronizationTest, CondVarWakesWaiter) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  bool observed = false;
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    observed = true;
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
  EXPECT_TRUE(observed);
}

TEST(SynchronizationTest, CondVarPingPongOrdersHandoffs) {
  // Two threads alternate incrementing a guarded counter; each waits for
  // the parity that makes it its turn.  Any missed wakeup deadlocks (the
  // test would hang and time out), any lock bug trips TSan.
  Mutex mu;
  CondVar cv;
  int turn = 0;
  constexpr int kRounds = 200;
  auto player = [&](int parity) {
    for (int i = 0; i < kRounds; ++i) {
      MutexLock lock(mu);
      while (turn % 2 != parity) cv.Wait(mu);
      ++turn;
      cv.NotifyAll();
    }
  };
  std::thread even([&] { player(0); });
  std::thread odd([&] { player(1); });
  even.join();
  odd.join();
  EXPECT_EQ(turn, 2 * kRounds);
}

TEST(SynchronizationTest, GuardedCounterHammer) {
  // TSan coverage for the wrappers: many threads pound one guarded
  // counter through MutexLock scopes, half of them exercising the
  // mid-scope Unlock/Lock path.  A broken RELEASE/ACQUIRE mapping in the
  // wrappers shows up as a data race report; without TSan the final
  // count still proves mutual exclusion.
  struct Shared {
    Mutex mu;
    std::int64_t counter GUARDED_BY(mu) = 0;
  };
  Shared shared;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&shared, t] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(shared.mu);
        if ((t + i) % 2 == 0) {
          // Release and re-acquire mid-scope to hammer the relock path.
          lock.Unlock();
          lock.Lock();
        }
        ++shared.counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  MutexLock lock(shared.mu);
  EXPECT_EQ(shared.counter,
            static_cast<std::int64_t>(kThreads) * kIncrements);
}

}  // namespace
}  // namespace fuseme
