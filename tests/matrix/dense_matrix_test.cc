#include "matrix/dense_matrix.h"

#include <gtest/gtest.h>

#include "matrix/generators.h"

namespace fuseme {
namespace {

TEST(DenseMatrixTest, DefaultIsEmpty) {
  DenseMatrix m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_EQ(m.size(), 0);
}

TEST(DenseMatrixTest, ConstructZeroInitialized) {
  DenseMatrix m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  for (std::int64_t i = 0; i < 3; ++i) {
    for (std::int64_t j = 0; j < 4; ++j) EXPECT_EQ(m(i, j), 0.0);
  }
  EXPECT_EQ(m.CountNonZeros(), 0);
}

TEST(DenseMatrixTest, ElementAccessRowMajor) {
  DenseMatrix m(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(m(0, 0), 1);
  EXPECT_EQ(m(0, 2), 3);
  EXPECT_EQ(m(1, 0), 4);
  EXPECT_EQ(m(1, 2), 6);
  EXPECT_EQ(m.row(1)[1], 5);
}

TEST(DenseMatrixTest, FillAndCountNonZeros) {
  DenseMatrix m(4, 4);
  m.Fill(2.5);
  EXPECT_EQ(m.CountNonZeros(), 16);
  m(1, 1) = 0.0;
  EXPECT_EQ(m.CountNonZeros(), 15);
}

TEST(DenseMatrixTest, Transposed) {
  DenseMatrix m(2, 3, {1, 2, 3, 4, 5, 6});
  DenseMatrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  for (std::int64_t i = 0; i < 2; ++i) {
    for (std::int64_t j = 0; j < 3; ++j) EXPECT_EQ(t(j, i), m(i, j));
  }
}

TEST(DenseMatrixTest, TransposeIsInvolution) {
  DenseMatrix m = RandomDense(7, 5, /*seed=*/1);
  EXPECT_EQ(m.Transposed().Transposed(), m);
}

TEST(DenseMatrixTest, MaxAbsDiff) {
  DenseMatrix a(2, 2, {1, 2, 3, 4});
  DenseMatrix b(2, 2, {1, 2.5, 3, 3});
  EXPECT_DOUBLE_EQ(DenseMatrix::MaxAbsDiff(a, b), 1.0);
  EXPECT_DOUBLE_EQ(DenseMatrix::MaxAbsDiff(a, a), 0.0);
}

TEST(DenseMatrixTest, EqualityIsDeep) {
  DenseMatrix a(2, 2, {1, 2, 3, 4});
  DenseMatrix b(2, 2, {1, 2, 3, 4});
  DenseMatrix c(2, 2, {1, 2, 3, 5});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(DenseMatrixTest, RandomDenseIsDeterministicPerSeed) {
  DenseMatrix a = RandomDense(5, 5, 42);
  DenseMatrix b = RandomDense(5, 5, 42);
  DenseMatrix c = RandomDense(5, 5, 43);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(DenseMatrixTest, RandomDenseRespectsRange) {
  DenseMatrix m = RandomDense(10, 10, 7, /*lo=*/2.0, /*hi=*/3.0);
  for (std::int64_t i = 0; i < m.size(); ++i) {
    EXPECT_GE(m.data()[i], 2.0);
    EXPECT_LE(m.data()[i], 3.0);
  }
}

}  // namespace
}  // namespace fuseme
