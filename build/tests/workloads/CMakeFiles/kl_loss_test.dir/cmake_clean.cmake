file(REMOVE_RECURSE
  "CMakeFiles/kl_loss_test.dir/kl_loss_test.cc.o"
  "CMakeFiles/kl_loss_test.dir/kl_loss_test.cc.o.d"
  "kl_loss_test"
  "kl_loss_test.pdb"
  "kl_loss_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kl_loss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
