// Sparsity exploitation on the ALS weighted squared loss (paper Fig. 1(a)):
//   loss = sum((X != 0) * (X - U×V)^2)
// The fused operator evaluates the U×V product only at X's non-zeros.
// This example measures the effect directly: the same loss computed by the
// FuseME engine (masked evaluation) versus an unfused operator-at-a-time
// engine (dense evaluation).
//
//   $ ./build/examples/als_sparsity

#include <cstdio>

#include "fuseme.h"

using namespace fuseme;  // NOLINT — example brevity

int main() {
  const std::int64_t m = 160, n = 160, k = 12, block = 16;
  const double density = 0.02;

  AlsLossQuery q = BuildAlsLoss(
      m, n, k, static_cast<std::int64_t>(density * m * n));
  SparseMatrix x = RandomSparse(m, n, density, /*seed=*/10, 1.0, 5.0);
  DenseMatrix u = RandomDense(m, k, /*seed=*/11, 0.1, 0.8);
  DenseMatrix v = RandomDense(k, n, /*seed=*/12, 0.1, 0.8);

  std::map<NodeId, BlockedMatrix> inputs;
  inputs[q.X] = BlockedMatrix::FromSparse(x, block);
  inputs[q.U] = BlockedMatrix::FromDense(u, block);
  inputs[q.V] = BlockedMatrix::FromDense(v, block);

  double expected = (*ReferenceEval(
      q.dag, q.loss, {{q.X, x.ToDense()}, {q.U, u}, {q.V, v}}))(0, 0);

  EngineOptions options;
  options.cluster.num_nodes = 4;
  options.cluster.tasks_per_node = 4;
  options.cluster.block_size = block;

  std::printf("weighted squared loss, X %lldx%lld at density %.3f\n\n",
              static_cast<long long>(m), static_cast<long long>(n), density);
  std::printf("%-10s %-14s %-14s %-14s %s\n", "system", "loss", "flops",
              "shuffled", "plan");
  for (SystemMode mode : {SystemMode::kFuseMe, SystemMode::kDistMe}) {
    options.system = mode;
    Engine engine(options);
    Engine::RunResult run = engine.Run(q.dag, inputs);
    if (!run.report.ok()) {
      std::printf("%-10s failed: %s\n", SystemModeName(mode).data(),
                  run.report.Summary().c_str());
      continue;
    }
    double loss = run.outputs.at(q.loss).blocks().ToDense()(0, 0);
    std::printf("%-10s %-14.4f %-14lld %-14s %zu stage(s)\n",
                SystemModeName(mode).data(), loss,
                static_cast<long long>(run.report.flops),
                HumanBytes(static_cast<double>(run.report.total_bytes()))
                    .c_str(),
                run.report.stages.size());
    if (std::abs(loss - expected) > 1e-6) {
      std::printf("!! mismatch vs reference %.4f\n", expected);
      return 1;
    }
  }
  std::printf(
      "\nFuseME fuses the whole query into one operator and only touches\n"
      "X's non-zeros, so its flop count is a small fraction of the unfused\n"
      "DistME execution, which materializes the dense U×V product.\n");
  return 0;
}
