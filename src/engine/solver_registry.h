// Stage-solver registry (DESIGN.md section 18).
//
// A stage solver is one way to run a PartialPlan as a distributed stage:
// it predicts the stage's cost-model statistics and executes the physical
// operator.  The registry turns the engine's historical hard-coded
// CFO/BFO/RFO/cpmm dispatch into data, MIOpen-Fusion-style: each solver
// names itself with a stable id (engine/solver_names.h), states its
// preconditions through IsApplicable — which returns a *precise* Status
// naming the violated precondition instead of a bare boolean — and the
// registry resolves an OperatorKind to the most refined applicable solver
// (e.g. solver.cfo.sddmm before solver.cfo.spmm before solver.cfo).
//
// Selection happens once, in Engine::Compile, and is recorded in the
// CompiledPlan artifact plus the fuseme_solver_* metric families and the
// fuseme.solver.chosen journal event; Engine::Execute replays the recorded
// solver without re-searching.  The OOM degradation ladder re-resolves
// dynamically when it switches operator kinds mid-stage.

#ifndef FUSEME_ENGINE_SOLVER_REGISTRY_H_
#define FUSEME_ENGINE_SOLVER_REGISTRY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "engine/engine.h"
#include "ops/fused_operator.h"
#include "telemetry/prediction.h"

namespace fuseme {

/// Everything a solver may consult, captured by value/pointer so solvers
/// stay stateless and the registry immutable (and therefore freely shared
/// across threads after construction).  All pointers are borrowed;
/// `model` is required, the sinks may be null.
struct SolverEnv {
  const CostModel* model = nullptr;
  bool pruned_search = true;
  bool balance_sparsity = false;
  MetricsRegistry* metrics = nullptr;
  EventJournal* journal = nullptr;

  const ClusterConfig& cluster() const { return model->config(); }
};

/// One way to execute a fused stage.  Implementations are immutable and
/// stateless: every method takes the full context, so a single global
/// instance serves all engines and threads.
class StageSolver {
 public:
  virtual ~StageSolver() = default;

  /// Stable identity from engine/solver_names.h.
  virtual std::string_view id() const = 0;
  /// The OperatorKind this solver implements (what PickOperator / forced
  /// selection asks for).
  virtual OperatorKind kind() const = 0;

  /// OK when every precondition holds; otherwise InvalidArgument naming
  /// the violated precondition (MIOpen-style explicit unsupported-
  /// combination reporting).  Must stay cheap: no (P,Q,R) searches.
  virtual Status IsApplicable(const SolverEnv& env,
                              const PartialPlan& plan) const = 0;

  /// Cost-model prediction for the stage: PredictBase computes the
  /// input-independent closed forms (this is what Engine::Compile records
  /// in the artifact); RefinePrediction then folds in what the live-bound
  /// inputs change (today: the CFO cell-stage narrow-dependency model).
  /// Predict composes the two — the historical Engine::PredictStage
  /// behavior.
  virtual Result<StagePrediction> PredictBase(const SolverEnv& env,
                                              const PartialPlan& plan,
                                              double budget_factor) const = 0;
  virtual void RefinePrediction(const SolverEnv& env, const PartialPlan& plan,
                                const FusedInputs* inputs,
                                StagePrediction* pred) const {
    (void)env;
    (void)plan;
    (void)inputs;
    (void)pred;
  }
  Result<StagePrediction> Predict(const SolverEnv& env,
                                  const PartialPlan& plan,
                                  const FusedInputs* inputs,
                                  double budget_factor) const;

  /// Modeled stage seconds under the default budget, or +infinity when no
  /// feasible configuration exists.  Default: Predict at budget 1.
  virtual double Cost(const SolverEnv& env, const PartialPlan& plan) const;

  /// Executes the stage on real block data.
  virtual Result<DistributedMatrix> Run(const SolverEnv& env,
                                        const PartialPlan& plan,
                                        const StagePrediction& pred,
                                        const FusedInputs& inputs,
                                        StageContext* ctx) const = 0;
};

/// Immutable process-wide solver catalogue.  Registration order within an
/// OperatorKind is refined-first, base-last; Resolve scans in that order.
class SolverRegistry {
 public:
  /// The global registry (thread-safe magic-static init; read-only after).
  static const SolverRegistry& Global();

  const std::vector<const StageSolver*>& solvers() const { return view_; }

  /// Solver by stable id, or null.
  const StageSolver* Find(std::string_view id) const;

  /// Solvers implementing `kind`, most refined first.
  std::vector<const StageSolver*> ForKind(OperatorKind kind) const;

  /// Most refined applicable solver for `kind`, falling back to the base
  /// solver when every refinement rejects (so resolution never changes
  /// *whether* a stage can run, only which refinement handles it).
  /// Records fuseme_solver_resolutions/rejections into env.metrics.
  /// Null only for OperatorKind::kAuto.
  const StageSolver* Resolve(const SolverEnv& env, OperatorKind kind,
                             const PartialPlan& plan) const;

 private:
  SolverRegistry();

  std::vector<std::unique_ptr<StageSolver>> solvers_;
  std::vector<const StageSolver*> view_;
};

/// The CFO cell-stage (matmul-free) narrow-dependency refinement: same-
/// shaped grid-partitioned inputs only shuffle their misaligned remainder,
/// and an aggregation root ships per-task partials.  `pred` must hold the
/// base (unrefined) prediction; `inputs` may be null (inputs then assumed
/// grid-partitioned over the whole cluster).  Exposed so Engine::Execute
/// can re-apply it to an artifact's recorded base prediction against the
/// freshly bound inputs of each run.  No-op for matmul-bearing plans.
void RefineCellStagePrediction(const SolverEnv& env, const PartialPlan& plan,
                               const FusedInputs* inputs,
                               StagePrediction* pred);

/// Total serialized bytes of a plan's matrix-valued external inputs,
/// split into the largest ("main", paper §2.2) one and the rest
/// ("sides").  Shared by the BFO solver and the engine's analytic path.
struct InputSplit {
  NodeId main = kInvalidNode;
  std::int64_t main_bytes = 0;
  std::int64_t side_bytes = 0;
};
InputSplit SplitPlanInputs(const PartialPlan& plan);

/// Smallest R making a (1,1,R) cuboid fit the task budget, or -1.
std::int64_t MinFeasibleCpmmR(const CostModel& model, const PartialPlan& plan);

// --- Describe facade -------------------------------------------------------

/// One solver's verdict on one stage, for Engine::Describe.
struct SolverCandidate {
  std::string solver_id;
  /// OK, or the precondition IsApplicable reported violated.
  Status applicability;
  /// Modeled seconds (only meaningful when feasible).
  double cost_seconds = 0.0;
  bool feasible = false;
  /// True for the solver Compile would record for this stage.
  bool chosen = false;
};

struct StageDescription {
  std::string label;
  OperatorKind kind = OperatorKind::kAuto;
  std::vector<SolverCandidate> candidates;
};

/// What Engine::Describe returns: the planner's stage list with every
/// registered solver's applicability/cost verdict per stage.
struct PlanDescription {
  std::string planner;
  std::vector<StageDescription> stages;

  /// Human-readable solver table (the `examples/explain` output).
  std::string ToString() const;
};

}  // namespace fuseme

#endif  // FUSEME_ENGINE_SOLVER_REGISTRY_H_
