#include "matrix/sparsity.h"

#include <gtest/gtest.h>

#include "matrix/block_ops.h"
#include "matrix/generators.h"

namespace fuseme {
namespace {

TEST(SparsityTest, EwiseMulIntersectsSupports) {
  // 10x10, both operands half full: expect ~25 nnz.
  EXPECT_EQ(EstimateEwiseBinaryNnz(BinaryFn::kMul, 10, 10, 50, 50), 25);
  // Disjointness isn't modeled; zero operand still gives zero.
  EXPECT_EQ(EstimateEwiseBinaryNnz(BinaryFn::kMul, 10, 10, 0, 50), 0);
}

TEST(SparsityTest, EwiseAddUnionsSupports) {
  EXPECT_EQ(EstimateEwiseBinaryNnz(BinaryFn::kAdd, 10, 10, 50, 50), 75);
  EXPECT_EQ(EstimateEwiseBinaryNnz(BinaryFn::kAdd, 10, 10, 100, 100), 100);
}

TEST(SparsityTest, EwiseDivIsDense) {
  EXPECT_EQ(EstimateEwiseBinaryNnz(BinaryFn::kDiv, 10, 10, 5, 5), 100);
}

TEST(SparsityTest, ScalarMulPreservesSparsity) {
  EXPECT_EQ(
      EstimateEwiseScalarNnz(BinaryFn::kMul, 10, 10, 30, 2.0, false), 30);
  // x + 1 destroys sparsity.
  EXPECT_EQ(
      EstimateEwiseScalarNnz(BinaryFn::kAdd, 10, 10, 30, 1.0, false), 100);
  // x + 0 preserves it.
  EXPECT_EQ(
      EstimateEwiseScalarNnz(BinaryFn::kAdd, 10, 10, 30, 0.0, false), 30);
}

TEST(SparsityTest, UnaryFollowsZeroPreservation) {
  EXPECT_EQ(EstimateUnaryNnz(UnaryFn::kSquare, 10, 10, 30), 30);
  EXPECT_EQ(EstimateUnaryNnz(UnaryFn::kExp, 10, 10, 30), 100);
}

TEST(SparsityTest, MatMulDenseTimesDenseIsDense) {
  EXPECT_EQ(EstimateMatMulNnz(10, 10, 10, 100, 100), 100);
}

TEST(SparsityTest, MatMulZeroOperandIsZero) {
  EXPECT_EQ(EstimateMatMulNnz(10, 10, 10, 0, 100), 0);
}

TEST(SparsityTest, MatMulSparseEstimateIsBetweenBounds) {
  // dA = dB = 0.1, k = 100: output density = 1-(1-0.01)^100 ≈ 0.634.
  std::int64_t nnz = EstimateMatMulNnz(100, 100, 100, 1000, 1000);
  EXPECT_GT(nnz, 6000);
  EXPECT_LT(nnz, 6700);
}

TEST(SparsityTest, MatMulFlops) {
  // Dense: 2*m*k*n.
  EXPECT_EQ(EstimateMatMulFlops(10, 20, 30, 200, 600), 2 * 10 * 20 * 30);
  // Sparse A at 10%: 10% of the dense flops.
  EXPECT_EQ(EstimateMatMulFlops(10, 20, 30, 20, 600), 2 * 10 * 20 * 30 / 10);
}

// Property check: the estimator tracks reality on random uniform inputs.
class MatMulNnzProperty
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(MatMulNnzProperty, EstimateIsCloseToActual) {
  auto [da, db] = GetParam();
  const std::int64_t n = 60;
  SparseMatrix a = RandomSparse(n, n, da, /*seed=*/100, 1.0, 2.0);
  SparseMatrix b = RandomSparse(n, n, db, /*seed=*/200, 1.0, 2.0);
  auto product = MatMul(Block::FromSparse(a), Block::FromSparse(b));
  ASSERT_TRUE(product.ok());
  std::int64_t estimate = EstimateMatMulNnz(n, n, n, a.nnz(), b.nnz());
  // Within 15% of the cell count (uniform independence approximation).
  EXPECT_NEAR(static_cast<double>(estimate),
              static_cast<double>(product->nnz()), 0.15 * n * n + 10);
}

INSTANTIATE_TEST_SUITE_P(
    Densities, MatMulNnzProperty,
    ::testing::Values(std::make_tuple(0.01, 0.01),
                      std::make_tuple(0.05, 0.05),
                      std::make_tuple(0.1, 0.2),
                      std::make_tuple(0.3, 0.3)));

}  // namespace
}  // namespace fuseme
