// Fixture metric catalogue: one entry, referenced from demo.cc.
#ifndef FIXTURE_CLEAN_METRIC_NAMES_H_
#define FIXTURE_CLEAN_METRIC_NAMES_H_

namespace fuseme::metric_names {

inline constexpr char kDemo[] = "fuseme_demo_total";

}  // namespace fuseme::metric_names

#endif  // FIXTURE_CLEAN_METRIC_NAMES_H_
