
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matrix/block.cc" "src/matrix/CMakeFiles/fuseme_matrix.dir/block.cc.o" "gcc" "src/matrix/CMakeFiles/fuseme_matrix.dir/block.cc.o.d"
  "/root/repo/src/matrix/block_ops.cc" "src/matrix/CMakeFiles/fuseme_matrix.dir/block_ops.cc.o" "gcc" "src/matrix/CMakeFiles/fuseme_matrix.dir/block_ops.cc.o.d"
  "/root/repo/src/matrix/blocked_matrix.cc" "src/matrix/CMakeFiles/fuseme_matrix.dir/blocked_matrix.cc.o" "gcc" "src/matrix/CMakeFiles/fuseme_matrix.dir/blocked_matrix.cc.o.d"
  "/root/repo/src/matrix/dense_matrix.cc" "src/matrix/CMakeFiles/fuseme_matrix.dir/dense_matrix.cc.o" "gcc" "src/matrix/CMakeFiles/fuseme_matrix.dir/dense_matrix.cc.o.d"
  "/root/repo/src/matrix/generators.cc" "src/matrix/CMakeFiles/fuseme_matrix.dir/generators.cc.o" "gcc" "src/matrix/CMakeFiles/fuseme_matrix.dir/generators.cc.o.d"
  "/root/repo/src/matrix/matrix_io.cc" "src/matrix/CMakeFiles/fuseme_matrix.dir/matrix_io.cc.o" "gcc" "src/matrix/CMakeFiles/fuseme_matrix.dir/matrix_io.cc.o.d"
  "/root/repo/src/matrix/scalar_ops.cc" "src/matrix/CMakeFiles/fuseme_matrix.dir/scalar_ops.cc.o" "gcc" "src/matrix/CMakeFiles/fuseme_matrix.dir/scalar_ops.cc.o.d"
  "/root/repo/src/matrix/sparse_matrix.cc" "src/matrix/CMakeFiles/fuseme_matrix.dir/sparse_matrix.cc.o" "gcc" "src/matrix/CMakeFiles/fuseme_matrix.dir/sparse_matrix.cc.o.d"
  "/root/repo/src/matrix/sparsity.cc" "src/matrix/CMakeFiles/fuseme_matrix.dir/sparsity.cc.o" "gcc" "src/matrix/CMakeFiles/fuseme_matrix.dir/sparsity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fuseme_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
