#include "telemetry/run_report.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "telemetry/metric_names.h"
#include "telemetry/metrics.h"
#include "telemetry/prediction.h"

namespace fuseme {
namespace {

StageTelemetry MakeStage(const std::string& label, double wall_seconds,
                         std::int64_t flops, double predicted_flops) {
  StageTelemetry t;
  t.label = label;
  t.wall_seconds = wall_seconds;
  t.threads = 4;
  t.actual.label = label;
  t.actual.num_tasks = 6;
  t.actual.consolidation_bytes = 1000;
  t.actual.aggregation_bytes = 500;
  t.actual.flops = flops;
  t.actual.max_task_memory = 2048;
  if (predicted_flops > 0) {
    t.predicted.present = true;
    t.predicted.operator_kind = "CFO";
    t.predicted.num_tasks = 6;
    t.predicted.net_bytes = 1000;
    t.predicted.agg_bytes = 500;
    t.predicted.flops = predicted_flops;
    t.predicted.mem_per_task = 2048;
  }
  return t;
}

TEST(RunReportTest, ProfilesStagesWithVerdicts) {
  std::vector<StageTelemetry> stages;
  stages.push_back(MakeStage("good", 0.75, 1 << 20, 1 << 20));
  stages.push_back(MakeStage("drifted", 0.25, 1 << 20, 100.0));
  stages.push_back(MakeStage("unpredicted", 0.0, 10, 0));

  MetricsRegistry registry;
  registry.GetCounter(metric_names::kEngineRuns, {{"status", "ok"}})
      ->Increment();
  RunReport report = BuildRunReport(Status::OK(), 12.5, stages,
                                    registry.Snapshot());

  ASSERT_EQ(report.stages.size(), 3u);
  EXPECT_EQ(report.stages[0].prediction, PredictionVerdict::kWithin2x);
  EXPECT_EQ(report.stages[1].prediction, PredictionVerdict::kOff);
  EXPECT_GT(report.stages[1].prediction_error_log2, 1.0);
  EXPECT_EQ(report.stages[2].prediction, PredictionVerdict::kNone);

  EXPECT_DOUBLE_EQ(report.stages[0].time_fraction, 0.75);
  EXPECT_DOUBLE_EQ(report.stages[1].time_fraction, 0.25);
  EXPECT_EQ(report.total_shuffle_bytes(), 3 * 1500);
  EXPECT_EQ(report.total_flops(), (1 << 20) + (1 << 20) + 10);
}

TEST(RunReportTest, TableListsEveryStage) {
  std::vector<StageTelemetry> stages;
  stages.push_back(MakeStage("alpha-stage", 1.0, 100, 100));
  stages.push_back(MakeStage("beta-stage", 1.0, 100, 0));
  RunReport report =
      BuildRunReport(Status::OK(), 2.0, stages, MetricsSnapshot{});
  const std::string table = report.FormatTable();
  EXPECT_NE(table.find("alpha-stage"), std::string::npos);
  EXPECT_NE(table.find("beta-stage"), std::string::npos);
  EXPECT_NE(table.find("totals:"), std::string::npos);
  EXPECT_NE(table.find("OK"), std::string::npos);
}

TEST(RunReportTest, JsonEmbedsMetricsSnapshot) {
  MetricsRegistry registry;
  registry.GetCounter("fuseme_probe_total")->Add(3);
  std::vector<StageTelemetry> stages;
  stages.push_back(MakeStage("only", 1.0, 100, 100));
  RunReport report =
      BuildRunReport(Status::OK(), 1.0, stages, registry.Snapshot());
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"metrics_snapshot\""), std::string::npos);
  EXPECT_NE(json.find("fuseme_probe_total"), std::string::npos);
  EXPECT_NE(json.find("\"stages\""), std::string::npos);
  // The embedded snapshot must itself stay machine-readable.
  const std::size_t begin = json.find("\"metrics_snapshot\": ");
  ASSERT_NE(begin, std::string::npos);
}

TEST(RunReportTest, FailedRunKeepsStatus) {
  RunReport report = BuildRunReport(Status::OutOfMemory("task 3"), 0.0, {},
                                    MetricsSnapshot{});
  EXPECT_FALSE(report.status.ok());
  const std::string table = report.FormatTable();
  EXPECT_NE(table.find("task 3"), std::string::npos);
}

}  // namespace
}  // namespace fuseme
