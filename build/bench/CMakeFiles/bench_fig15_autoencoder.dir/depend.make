# Empty dependencies file for bench_fig15_autoencoder.
# This may be replaced when dependencies are built.
