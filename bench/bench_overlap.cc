// Compute/communication overlap: serial vs double-buffered prefetch wall
// clock on real-mode fig-12 NMF cells (DESIGN.md section 14).
//
// Both modes run the same fused CFO plan over actual blocks with the
// emulated shuffle pace enabled (ClusterConfig::
// emulated_shuffle_seconds_per_byte), which stands in for network transfer
// time by sleeping per copied byte — so the host CPU is idle during a
// "transfer" and asynchronous prefetching can genuinely hide it, even on
// machines with few cores.  The only difference between the two runs is
// ClusterConfig::prefetch_depth: 0 (synchronous legacy fetch) vs 2 (double
// buffering).  Outputs and StageStats must be bitwise identical; the wall
// clock must not be.
//
// Environment overrides for quick smoke runs (scripts/run_bench_smoke.sh):
//   FUSEME_BENCH_OVERLAP_N      matrix dimension of the first cell
//   FUSEME_BENCH_OVERLAP_PACE   emulated seconds per copied byte

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "matrix/generators.h"
#include "telemetry/metrics.h"
#include "workloads/queries.h"

using namespace fuseme;         // NOLINT
using namespace fuseme::bench;  // NOLINT

namespace {

std::vector<BenchRecord> g_records;
Tracer g_tracer;            // includes the "prefetch" copy spans
MetricsRegistry g_metrics;  // embedded in BENCH_overlap.json

struct Cell {
  std::string label;
  std::int64_t n, k, bs;
  double density;
};

struct ModeResult {
  double wall_seconds = 0.0;
  double fetch_wait_seconds = 0.0;
  double compute_busy_seconds = 0.0;
  Engine::RunResult run;
};

ModeResult RunMode(const Cell& cell, const NmfPattern& q,
                   const FusionPlanSet& plans,
                   const std::map<NodeId, BlockedMatrix>& inputs,
                   int prefetch_depth, double pace) {
  EngineOptions options;
  options.system = SystemMode::kFuseMe;
  options.cluster.num_nodes = 2;
  options.cluster.tasks_per_node = 2;
  options.cluster.block_size = cell.bs;
  options.cluster.task_memory_budget = 1LL << 40;
  // Fixed work-item parallelism for BOTH modes; the pool keeps spare
  // workers for the staged copies, which is where overlap comes from.
  options.cluster.local_threads = 2;
  options.cluster.prefetch_depth = prefetch_depth;
  options.cluster.emulated_shuffle_seconds_per_byte = pace;
  options.tracer = &g_tracer;
  options.metrics = &g_metrics;

  ModeResult result;
  double best = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    Engine engine(options);
    const auto t0 = std::chrono::steady_clock::now();
    Engine::RunResult run =
        engine.RunWithPlans(q.dag, plans, inputs, OperatorKind::kCfo);
    const auto t1 = std::chrono::steady_clock::now();
    if (!run.report.ok()) {
      std::fprintf(stderr, "overlap cell %s (depth %d) failed: %s\n",
                   cell.label.c_str(), prefetch_depth,
                   run.report.status.ToString().c_str());
      std::exit(1);
    }
    const double wall = std::chrono::duration<double>(t1 - t0).count();
    if (wall < best) {
      best = wall;
      result.fetch_wait_seconds = 0.0;
      result.compute_busy_seconds = 0.0;
      for (const StageTelemetry& t : run.report.telemetry) {
        result.fetch_wait_seconds += t.pipeline.fetch_wait_seconds;
        result.compute_busy_seconds += t.pipeline.compute_busy_seconds;
      }
      result.run = std::move(run);
    }
  }
  result.wall_seconds = best;
  return result;
}

void RunCell(const Cell& cell, double pace) {
  NmfPattern q = BuildNmfPattern(
      cell.n, cell.n, cell.k,
      static_cast<std::int64_t>(static_cast<double>(cell.n) *
                                static_cast<double>(cell.n) * cell.density));
  FusionPlanSet full;
  full.plans.emplace_back(
      &q.dag, std::vector<NodeId>{q.vT, q.mm, q.add, q.log, q.mul}, q.mul);
  std::map<NodeId, BlockedMatrix> inputs;
  inputs[q.X] = BlockedMatrix::FromSparse(
      RandomSparse(cell.n, cell.n, cell.density, 1, 1.0, 2.0), cell.bs);
  inputs[q.U] = BlockedMatrix::FromDense(
      RandomDense(cell.n, cell.k, 2, 0.5, 1.5), cell.bs);
  inputs[q.V] = BlockedMatrix::FromDense(
      RandomDense(cell.n, cell.k, 3, 0.5, 1.5), cell.bs);

  ModeResult serial = RunMode(cell, q, full, inputs, /*prefetch_depth=*/0,
                              pace);
  ModeResult prefetch = RunMode(cell, q, full, inputs, /*prefetch_depth=*/2,
                                pace);

  // Overlap must be invisible to results and accounting.
  const DenseMatrix a = serial.run.outputs.at(q.mul).blocks().ToDense();
  const DenseMatrix b = prefetch.run.outputs.at(q.mul).blocks().ToDense();
  if (DenseMatrix::MaxAbsDiff(a, b) != 0.0) {
    std::fprintf(stderr, "FAIL: %s: prefetch changed the outputs\n",
                 cell.label.c_str());
    std::exit(1);
  }
  const ExecutionReport& sr = serial.run.report;
  const ExecutionReport& pr = prefetch.run.report;
  if (sr.consolidation_bytes != pr.consolidation_bytes ||
      sr.aggregation_bytes != pr.aggregation_bytes || sr.flops != pr.flops ||
      sr.max_task_memory != pr.max_task_memory) {
    std::fprintf(stderr, "FAIL: %s: prefetch changed StageStats\n",
                 cell.label.c_str());
    std::exit(1);
  }

  const double speedup = serial.wall_seconds / prefetch.wall_seconds;
  std::printf(
      "%-14s depth 0: %.3fs (fetch-wait %.3fs)   depth 2: %.3fs "
      "(fetch-wait %.3fs)   speedup %.2fx\n",
      cell.label.c_str(), serial.wall_seconds, serial.fetch_wait_seconds,
      prefetch.wall_seconds, prefetch.fetch_wait_seconds, speedup);

  auto record = [&](const char* name, const ModeResult& mode, int depth) {
    char wait[32], busy[32];
    std::snprintf(wait, sizeof(wait), "%.6f", mode.fetch_wait_seconds);
    std::snprintf(busy, sizeof(busy), "%.6f", mode.compute_busy_seconds);
    BenchRecord r = RecordFor(
        name, mode.run.report,
        {{"cell", cell.label},
         {"n", std::to_string(cell.n)},
         {"k", std::to_string(cell.k)},
         {"block_size", std::to_string(cell.bs)},
         {"prefetch_depth", std::to_string(depth)},
         {"local_threads", "2"},
         {"fetch_wait_seconds", wait},
         {"compute_busy_seconds", busy}});
    r.elapsed_seconds = mode.wall_seconds;  // wall clock, not modeled
    return r;
  };
  BenchRecord rec_serial = record("overlap_serial", serial, 0);
  BenchRecord rec_prefetch = record("overlap_prefetch", prefetch, 2);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", speedup);
  rec_prefetch.config.emplace_back("speedup", buf);
  g_records.push_back(std::move(rec_serial));
  g_records.push_back(std::move(rec_prefetch));
}

}  // namespace

int main() {
  std::int64_t n = 768;
  if (const char* env = std::getenv("FUSEME_BENCH_OVERLAP_N")) {
    n = std::max<std::int64_t>(128, std::atoll(env));
  }
  // ~6 MB/s emulated shuffle: slow enough that block consolidation
  // dominates the fetch-heavy cells, the regime Fig. 12 bars live in.
  double pace = 1.6e-7;
  if (const char* env = std::getenv("FUSEME_BENCH_OVERLAP_PACE")) {
    pace = std::atof(env);
  }
  // Fixed pool size so results do not depend on the host's core count; the
  // copies need spare workers beyond the 2 work-item threads.
  SetGlobalThreadPoolThreads(8);

  std::printf(
      "=== Async shuffle overlap: prefetch_depth 0 vs 2, real-mode CFO, "
      "emulated shuffle %.1e s/B ===\n\n",
      pace);
  // Two fig-12-style cells: a sparse fetch-dominated square NMF and a
  // denser, wider-k variant with more transfer per output block.
  RunCell({"nmf_sparse", n, /*k=*/64, /*bs=*/64, /*density=*/0.02}, pace);
  RunCell({"nmf_wide_k", (n * 3) / 4, /*k=*/128, /*bs=*/64,
           /*density=*/0.05},
          pace);

  if (!WriteBenchJson("overlap", g_records, g_metrics.Snapshot().ToJson())) {
    return 1;
  }
  WriteTraceJson("overlap", g_tracer);
  return 0;
}
