#include "workloads/queries.h"

#include <gtest/gtest.h>

#include "engine/reference.h"
#include "matrix/generators.h"

namespace fuseme {
namespace {

TEST(GnmfQueryTest, ShapesMatchEq6) {
  GnmfQuery q = BuildGnmf(100, 80, 10, 400);
  EXPECT_EQ(q.dag.node(q.a5).rows, 10);   // U': k×n
  EXPECT_EQ(q.dag.node(q.a5).cols, 80);
  EXPECT_EQ(q.dag.node(q.b5).rows, 100);  // V': m×k
  EXPECT_EQ(q.dag.node(q.b5).cols, 10);
  EXPECT_EQ(q.dag.outputs().size(), 2u);
  EXPECT_EQ(q.dag.MatMulNodes().size(), 6u);
}

TEST(GnmfQueryTest, SharedTransposesHaveFanoutTwo) {
  GnmfQuery q = BuildGnmf(100, 80, 10, 400);
  EXPECT_EQ(q.dag.FanOut(q.vT), 2);
  EXPECT_EQ(q.dag.FanOut(q.uT), 2);
}

TEST(GnmfQueryTest, UpdateKeepsNonNegativityAndReducesError) {
  // Multiplicative GNMF updates keep factors non-negative and do not
  // increase the reconstruction objective on average.
  const std::int64_t m = 30, n = 24, k = 4;
  GnmfQuery q = BuildGnmf(m, n, k, /*x_nnz=*/m * n / 5);
  SparseMatrix x = RandomSparse(m, n, 0.2, /*seed=*/91, 1.0, 5.0);
  DenseMatrix xd = x.ToDense();
  DenseMatrix v = RandomDense(m, k, /*seed=*/92, 0.1, 1.0);
  DenseMatrix u = RandomDense(k, n, /*seed=*/93, 0.1, 1.0);

  auto objective = [&](const DenseMatrix& vv, const DenseMatrix& uu) {
    double err = 0;
    for (std::int64_t i = 0; i < m; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        double dot = 0;
        for (std::int64_t kk = 0; kk < k; ++kk) dot += vv(i, kk) * uu(kk, j);
        err += (xd(i, j) - dot) * (xd(i, j) - dot);
      }
    }
    return err;
  };

  double prev = objective(v, u);
  for (int iter = 0; iter < 5; ++iter) {
    std::map<NodeId, DenseMatrix> bind = {{q.X, xd}, {q.V, v}, {q.U, u}};
    DenseMatrix u_next = *ReferenceEval(q.dag, q.a5, bind);
    DenseMatrix v_next = *ReferenceEval(q.dag, q.b5, bind);
    u = u_next;
    v = v_next;
    for (std::int64_t i = 0; i < u.size(); ++i) EXPECT_GE(u.data()[i], 0.0);
    for (std::int64_t i = 0; i < v.size(); ++i) EXPECT_GE(v.data()[i], 0.0);
  }
  EXPECT_LT(objective(v, u), prev);
}

TEST(NmfPatternTest, Shapes) {
  NmfPattern q = BuildNmfPattern(50, 40, 8, 200);
  EXPECT_EQ(q.dag.node(q.mul).rows, 50);
  EXPECT_EQ(q.dag.node(q.mul).cols, 40);
  EXPECT_EQ(q.dag.node(q.mm).rows, 50);
  EXPECT_EQ(q.dag.node(q.mm).cols, 40);
  EXPECT_EQ(q.dag.outputs().size(), 1u);
}

TEST(AlsLossTest, LossIsZeroAtExactFactorization) {
  // X = U×V restricted to X's support: the weighted loss must vanish when
  // X actually equals U×V at stored positions.
  const std::int64_t m = 12, n = 10, k = 3;
  DenseMatrix u = RandomDense(m, k, /*seed=*/95, 0.5, 1.0);
  DenseMatrix v = RandomDense(k, n, /*seed=*/96, 0.5, 1.0);
  // Dense product as the "ratings".
  DenseMatrix x(m, n);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double dot = 0;
      for (std::int64_t kk = 0; kk < k; ++kk) dot += u(i, kk) * v(kk, j);
      x(i, j) = dot;
    }
  }
  AlsLossQuery q = BuildAlsLoss(m, n, k, m * n);
  auto loss =
      ReferenceEval(q.dag, q.loss, {{q.X, x}, {q.U, u}, {q.V, v}});
  ASSERT_TRUE(loss.ok());
  EXPECT_NEAR((*loss)(0, 0), 0.0, 1e-18);
}

TEST(PcaPatternTest, Shapes) {
  PcaPattern q = BuildPcaPattern(200, 30);
  EXPECT_EQ(q.dag.node(q.mm2).rows, 1);
  EXPECT_EQ(q.dag.node(q.mm2).cols, 30);
}

TEST(Fig1cTest, Shapes) {
  Fig1cQuery q = BuildFig1c(100, 80, 10, 800);
  EXPECT_EQ(q.dag.node(q.out).rows, 100);
  EXPECT_EQ(q.dag.node(q.out).cols, 10);
}

}  // namespace
}  // namespace fuseme
