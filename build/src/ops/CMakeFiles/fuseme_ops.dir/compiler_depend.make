# Empty compiler generated dependencies file for fuseme_ops.
# This may be replaced when dependencies are built.
