#include "telemetry/prediction.h"

#include <gtest/gtest.h>

#include <cmath>

#include "engine/engine.h"
#include "matrix/generators.h"
#include "telemetry/tracer.h"
#include "workloads/queries.h"

namespace fuseme {
namespace {

StageTelemetry MakeStage(const std::string& label, double pred_net,
                         double pred_flops, std::int64_t actual_net,
                         std::int64_t actual_flops) {
  StageTelemetry t;
  t.label = label;
  t.predicted.present = true;
  t.predicted.operator_kind = "CFO";
  t.predicted.net_bytes = pred_net;
  t.predicted.flops = pred_flops;
  t.actual.label = label;
  t.actual.consolidation_bytes = actual_net;
  t.actual.flops = actual_flops;
  return t;
}

TEST(PredictionReportTest, ExactPredictionHasZeroDrift) {
  PredictionReport report = BuildPredictionReport(
      {MakeStage("s", 1 << 20, 1 << 20, 1 << 20, 1 << 20)});
  ASSERT_EQ(report.stages.size(), 1u);
  EXPECT_DOUBLE_EQ(report.stages[0].net_ratio, 1.0);
  EXPECT_DOUBLE_EQ(report.stages[0].flops_ratio, 1.0);
  EXPECT_DOUBLE_EQ(report.max_abs_log2, 0.0);
  EXPECT_TRUE(report.WithinFactor(1.0 + 1e-12));
}

TEST(PredictionReportTest, RatiosAreActualOverPredicted) {
  PredictionReport report = BuildPredictionReport(
      {MakeStage("s", 1 << 20, 1 << 20, 1 << 21, 1 << 18)});
  ASSERT_EQ(report.stages.size(), 1u);
  EXPECT_DOUBLE_EQ(report.stages[0].net_ratio, 2.0);
  EXPECT_DOUBLE_EQ(report.stages[0].flops_ratio, 0.25);
  EXPECT_DOUBLE_EQ(report.max_abs_log2, 2.0);  // flops off by 4x
  EXPECT_FALSE(report.WithinFactor(2.0));
  EXPECT_TRUE(report.WithinFactor(4.0));
}

TEST(PredictionReportTest, NoiseFloorSuppressesEmptyDimensions) {
  // Both sides below the floor: ratio pinned to 1.0 (no 0/0 artifacts).
  PredictionReport report =
      BuildPredictionReport({MakeStage("s", 0, 10, 100, 0)});
  ASSERT_EQ(report.stages.size(), 1u);
  EXPECT_DOUBLE_EQ(report.stages[0].net_ratio, 1.0);
  EXPECT_DOUBLE_EQ(report.stages[0].flops_ratio, 1.0);
}

TEST(PredictionReportTest, SkipsStagesWithoutPrediction) {
  StageTelemetry no_pred;
  no_pred.label = "failed before planning";
  PredictionReport report = BuildPredictionReport(
      {no_pred, MakeStage("s", 1 << 20, 1 << 20, 1 << 20, 1 << 20)});
  EXPECT_EQ(report.stages.size(), 1u);
}

TEST(PredictionReportTest, FormatTableMentionsEveryStage) {
  const std::string table = FormatPredictionTable(
      {MakeStage("alpha", 1 << 20, 1 << 20, 1 << 20, 1 << 20),
       MakeStage("beta", 1 << 20, 1 << 20, 1 << 21, 1 << 20)});
  EXPECT_NE(table.find("alpha"), std::string::npos);
  EXPECT_NE(table.find("beta"), std::string::npos);
  EXPECT_NE(table.find("net"), std::string::npos);
  EXPECT_NE(table.find("flops"), std::string::npos);
}

// --- Predicted-vs-actual on a real fused run (the ISSUE acceptance
// criterion): the cost model's NetEst/ComEst for the chosen cuboid must
// agree with the runtime's measured charges within a documented factor of
// 2 per dimension (|log2 ratio| <= 1) on the reference NMF plan. ---

class PredictionAgreementTest : public ::testing::TestWithParam<SystemMode> {
};

TEST_P(PredictionAgreementTest, RealChargesTrackPrediction) {
  NmfPattern q = BuildNmfPattern(160, 160, 32, /*x_nnz=*/2560);
  EngineOptions options;
  options.system = GetParam();
  options.cluster.num_nodes = 2;
  options.cluster.tasks_per_node = 3;
  options.cluster.block_size = 8;

  SparseMatrix x = RandomSparse(160, 160, 0.1, /*seed=*/81, 1.0, 2.0);
  std::map<NodeId, BlockedMatrix> inputs;
  inputs[q.X] = BlockedMatrix::FromSparse(x, 8);
  inputs[q.U] = BlockedMatrix::FromDense(RandomDense(160, 32, 82), 8);
  inputs[q.V] = BlockedMatrix::FromDense(RandomDense(160, 32, 83), 8);

  Engine engine(options);
  auto run = engine.Run(q.dag, inputs);
  ASSERT_TRUE(run.report.ok())
      << SystemModeName(GetParam()) << ": " << run.report.status;
  ASSERT_FALSE(run.report.telemetry.empty());
  ASSERT_EQ(run.report.telemetry.size(), run.report.stages.size());

  const PredictionReport report =
      BuildPredictionReport(run.report.telemetry);
  ASSERT_FALSE(report.stages.empty());
  // Documented tolerance (DESIGN.md section 10): every per-stage net /
  // agg / flops / mem ratio within a factor of 2 on this reference
  // workload, above the noise floors.
  EXPECT_TRUE(report.WithinFactor(2.0))
      << SystemModeName(GetParam()) << ": max |log2 ratio| = "
      << report.max_abs_log2 << "\n"
      << FormatPredictionTable(run.report.telemetry);
}

INSTANTIATE_TEST_SUITE_P(AllSystems, PredictionAgreementTest,
                         ::testing::Values(SystemMode::kFuseMe,
                                           SystemMode::kSystemDs,
                                           SystemMode::kMatFast,
                                           SystemMode::kDistMe,
                                           SystemMode::kTensorFlow),
                         [](const auto& info) {
                           return std::string(SystemModeName(info.param));
                         });

TEST(PredictionTelemetryTest, EveryExecutedStageCarriesAPrediction) {
  NmfPattern q = BuildNmfPattern(160, 160, 32, /*x_nnz=*/2560);
  EngineOptions options;
  options.system = SystemMode::kFuseMe;
  options.analytic = true;
  Engine engine(options);
  auto run = engine.Run(q.dag, {});
  ASSERT_TRUE(run.report.ok()) << run.report.status;
  ASSERT_EQ(run.report.telemetry.size(), run.report.stages.size());
  for (std::size_t i = 0; i < run.report.telemetry.size(); ++i) {
    const StageTelemetry& t = run.report.telemetry[i];
    EXPECT_TRUE(t.predicted.present) << t.label;
    EXPECT_EQ(t.label, run.report.stages[i].label);
    EXPECT_GE(t.predicted.cuboid.volume(), 1);
    EXPECT_GT(t.actual.elapsed_seconds, 0.0) << t.label;
  }
}

TEST(PredictionTelemetryTest, EngineRecordsStageSpans) {
  NmfPattern q = BuildNmfPattern(160, 160, 32, /*x_nnz=*/2560);
  Tracer tracer;
  EngineOptions options;
  options.system = SystemMode::kFuseMe;
  options.cluster.num_nodes = 2;
  options.cluster.tasks_per_node = 3;
  options.cluster.block_size = 8;
  options.tracer = &tracer;

  SparseMatrix x = RandomSparse(160, 160, 0.1, /*seed=*/81, 1.0, 2.0);
  std::map<NodeId, BlockedMatrix> inputs;
  inputs[q.X] = BlockedMatrix::FromSparse(x, 8);
  inputs[q.U] = BlockedMatrix::FromDense(RandomDense(160, 32, 82), 8);
  inputs[q.V] = BlockedMatrix::FromDense(RandomDense(160, 32, 83), 8);

  Engine engine(options);
  auto run = engine.Run(q.dag, inputs);
  ASSERT_TRUE(run.report.ok()) << run.report.status;

  std::size_t stage_spans = 0, work_item_spans = 0;
  for (const TraceSpan& span : tracer.spans()) {
    if (span.category == "stage") ++stage_spans;
    if (span.category == "work-item") ++work_item_spans;
    EXPECT_GE(span.end_us, span.begin_us);
  }
  EXPECT_EQ(stage_spans, run.report.stages.size());
  EXPECT_GT(work_item_spans, 0u);
  // Every work-item span falls inside some stage span's window.
  Result<std::vector<TraceSpan>> round_trip =
      ParseChromeTrace(tracer.ToChromeJson());
  ASSERT_TRUE(round_trip.ok()) << round_trip.status();
  EXPECT_EQ(round_trip->size(), tracer.size());
}

}  // namespace
}  // namespace fuseme
