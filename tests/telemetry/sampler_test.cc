// Time-series sampler: flattening rules, SampleNow determinism, ring
// bounds, background-thread lifecycle, and the /seriesz JSON shape.

#include "telemetry/sampler.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "telemetry/metrics.h"

namespace fuseme {
namespace {

double ValueOf(const TimeSample& sample, const std::string& key) {
  for (const auto& [k, v] : sample.values) {
    if (k == key) return v;
  }
  ADD_FAILURE() << "series key not found: " << key;
  return -1;
}

TEST(SamplerTest, FlattenCoversAllInstrumentKinds) {
  MetricsRegistry registry;
  registry.GetCounter("fuseme_test_events_total")->Add(7);
  Gauge* g = registry.GetGauge("fuseme_test_depth");
  g->Set(9.0);
  g->Set(4.0);
  Histogram* h = registry.GetHistogram("fuseme_test_seconds", {1.0});
  h->Observe(0.5);
  h->Observe(2.5);

  const auto values = MetricsSampler::Flatten(registry.Snapshot());
  const TimeSample sample{0, values};
  EXPECT_DOUBLE_EQ(ValueOf(sample, "fuseme_test_events_total"), 7.0);
  EXPECT_DOUBLE_EQ(ValueOf(sample, "fuseme_test_depth"), 4.0);
  EXPECT_DOUBLE_EQ(ValueOf(sample, "fuseme_test_depth_peak"), 9.0);
  EXPECT_DOUBLE_EQ(ValueOf(sample, "fuseme_test_seconds_count"), 2.0);
  EXPECT_DOUBLE_EQ(ValueOf(sample, "fuseme_test_seconds_sum"), 3.0);
}

TEST(SamplerTest, SampleNowIsDeterministicForAFixedRegistry) {
  MetricsRegistry registry;
  registry.GetCounter("fuseme_test_events_total")->Add(42);

  MetricsSampler sampler(&registry, {.period_seconds = 1.0, .capacity = 8});
  const TimeSample a = sampler.SampleNow();
  const TimeSample b = sampler.SampleNow();
  // Timestamps advance; the flattened values are bit-identical.
  EXPECT_EQ(a.values, b.values);
  EXPECT_LE(a.t_us, b.t_us);
  EXPECT_EQ(sampler.total_samples(), 2);

  registry.GetCounter("fuseme_test_events_total")->Add(1);
  const TimeSample c = sampler.SampleNow();
  EXPECT_DOUBLE_EQ(ValueOf(c, "fuseme_test_events_total"), 43.0);
}

TEST(SamplerTest, RingRetainsNewestOldestFirst) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("fuseme_test_depth");

  MetricsSampler sampler(&registry, {.period_seconds = 1.0, .capacity = 4});
  for (int i = 0; i < 10; ++i) {
    g->Set(static_cast<double>(i));
    sampler.SampleNow();
  }
  EXPECT_EQ(sampler.total_samples(), 10);
  EXPECT_EQ(sampler.capacity(), 4);

  const std::vector<TimeSample> series = sampler.Series();
  ASSERT_EQ(series.size(), 4u);
  // The four newest samples survive, oldest first: gauge values 6..9.
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(ValueOf(series[i], "fuseme_test_depth"), 6.0 + i);
  }
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_LE(series[i - 1].t_us, series[i].t_us);
  }
}

TEST(SamplerTest, BackgroundThreadSamplesAndStops) {
  MetricsRegistry registry;
  registry.GetCounter("fuseme_test_events_total")->Add(5);

  MetricsSampler sampler(&registry,
                         {.period_seconds = 0.005, .capacity = 128});
  sampler.Start();
  sampler.Start();  // idempotent
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (sampler.total_samples() < 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  sampler.Stop();
  sampler.Stop();  // idempotent
  const std::int64_t after_stop = sampler.total_samples();
  EXPECT_GE(after_stop, 3);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(sampler.total_samples(), after_stop);
  // Restart works after a Stop.
  sampler.Start();
  sampler.Stop();
}

TEST(SamplerTest, ToJsonShape) {
  MetricsRegistry registry;
  registry.GetCounter("fuseme_test_events_total")->Add(3);
  MetricsSampler sampler(&registry, {.period_seconds = 0.5, .capacity = 2});
  sampler.SampleNow();

  const std::string json = sampler.ToJson();
  EXPECT_NE(json.find("\"period_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"capacity\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"taken\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"fuseme_test_events_total\""), std::string::npos);
}

}  // namespace
}  // namespace fuseme
