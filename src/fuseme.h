// FuseME public facade: the one header applications include.
//
//   #include "fuseme.h"
//
//   fuseme::EngineOptions options;  // or EngineOptions::Builder()...
//   FUSEME_ASSIGN_OR_RETURN(fuseme::Engine engine,
//                           fuseme::Engine::Create(options));
//   FUSEME_ASSIGN_OR_RETURN(fuseme::CompiledPlan plan, engine.Compile(dag));
//   auto result = engine.Execute(plan, inputs);  // compile once, run many
//   std::cout << result.Summary() << "\n";
//
// Everything re-exported here is the supported user-facing API: query
// parsing and DAG construction (ir/), matrix generation and I/O
// (matrix/), the engine with its planners, cost model, fault injection
// and recovery knobs (engine/, cost/, fusion/, runtime/), observability
// (telemetry/), and the paper's workloads (workloads/).  Internal layers
// — kernels, physical operators, the verifier's rule internals — stay
// behind their own headers on purpose; depend on them only from tests.
//
// MIGRATION NOTE (DESIGN.md section 18): Engine::Run and
// Engine::RunWithPlans are legacy single-shot entry points, kept as thin
// wrappers over the compile/execute pipeline.  They re-plan, re-verify,
// and re-resolve solvers on every call.  New code should use
//
//   Engine::Describe(dag)            — inspect solver choices, run nothing
//   Engine::Compile(dag)             — plan + verify + resolve, once
//   Engine::CompileWithPlans(...)    — same, over a caller plan set
//   Engine::Execute(plan, inputs)    — replay against fresh inputs
//   CompiledPlan::ToJson/FromJson    — persist across processes
//
// and reserve Run/RunWithPlans for one-off queries.  Defining
// FUSEME_ENABLE_DEPRECATION_WARNINGS turns the legacy pair's
// FUSEME_DEPRECATED annotations into [[deprecated]] warnings.

#ifndef FUSEME_FUSEME_H_
#define FUSEME_FUSEME_H_

// Status/Result error handling, logging, formatting helpers.
#include "common/logging.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"

// Cost model and the (P,Q,R) cuboid optimizer (paper §3).
#include "cost/cost_model.h"
#include "cost/optimizer.h"

// The engine facade itself, the compile-once/execute-many artifact and
// stage-solver registry (DESIGN.md section 18), plus the single-node
// reference executor.
#include "engine/compiled_plan.h"
#include "engine/engine.h"
#include "engine/reference.h"
#include "engine/solver_names.h"
#include "engine/solver_registry.h"

// Fusion planners (CFG and the compared systems' strategies, paper §4).
#include "fusion/planners.h"

// Expression IR: builder DSL, parser, DAG, pretty-printer.
#include "ir/dag.h"
#include "ir/expr.h"
#include "ir/parser.h"
#include "ir/printer.h"

// Matrix generation and I/O.
#include "matrix/generators.h"
#include "matrix/matrix_io.h"

// Runtime vocabulary: cluster shape, fault schedules, the simulator.
#include "runtime/cluster_config.h"
#include "runtime/fault_injector.h"
#include "runtime/simulator.h"

// Observability: metrics, tracing, predicted-vs-actual telemetry, and
// the live plane (flight recorder, sampler, HTTP exporter — DESIGN.md
// section 17).
#include "telemetry/event_journal.h"
#include "telemetry/event_names.h"
#include "telemetry/http_exporter.h"
#include "telemetry/metric_names.h"
#include "telemetry/metrics.h"
#include "telemetry/observability.h"
#include "telemetry/prediction.h"
#include "telemetry/run_report.h"
#include "telemetry/sampler.h"
#include "telemetry/tracer.h"

// Paper workloads and dataset descriptions (§6.1).
#include "workloads/autoencoder.h"
#include "workloads/datasets.h"
#include "workloads/queries.h"

#endif  // FUSEME_FUSEME_H_
