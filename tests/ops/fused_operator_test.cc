// Distributed fused operators vs the single-node oracle, across cuboid
// shapes, both operators, sparse and dense data, and aggregation roots.

#include "ops/fused_operator.h"

#include <cmath>

#include <gtest/gtest.h>

#include "engine/reference.h"
#include "matrix/generators.h"
#include "workloads/queries.h"

namespace fuseme {
namespace {

constexpr std::int64_t kBs = 8;

ClusterConfig TestCluster(std::int64_t budget_bytes = 1LL << 40) {
  ClusterConfig config;
  config.num_nodes = 2;
  config.tasks_per_node = 3;
  config.block_size = kBs;
  config.task_memory_budget = budget_bytes;
  return config;
}

struct Bound {
  std::map<NodeId, BlockedMatrix> blocked;
  std::map<NodeId, DenseMatrix> dense;
  std::map<NodeId, DistributedMatrix> dist;

  void Bind(NodeId id, DenseMatrix value) {
    blocked[id] = BlockedMatrix::FromDense(value, kBs);
    dense[id] = std::move(value);
  }
  void BindSparse(NodeId id, const SparseMatrix& value) {
    blocked[id] = BlockedMatrix::FromSparse(value, kBs);
    dense[id] = value.ToDense();
  }
  FusedInputs Inputs(int num_tasks) {
    FusedInputs out;
    for (auto& [id, m] : blocked) {
      dist.emplace(id, DistributedMatrix::Create(m, PartitionScheme::kGrid,
                                                 num_tasks));
    }
    for (auto& [id, dm] : dist) out[id] = &dm;
    return out;
  }
};

struct NmfCase {
  NmfPattern q;
  Bound bound;
  DenseMatrix expected;

  NmfCase(std::int64_t i, std::int64_t j, std::int64_t k, double density)
      : q(BuildNmfPattern(i, j, k,
                          static_cast<std::int64_t>(i * j * density))) {
    bound.BindSparse(q.X, RandomSparse(i, j, density, /*seed=*/7, 1.0, 2.0));
    bound.Bind(q.U, RandomDense(i, k, /*seed=*/8, 0.5, 1.5));
    bound.Bind(q.V, RandomDense(j, k, /*seed=*/9, 0.5, 1.5));
    auto ref = ReferenceEval(q.dag, q.mul, bound.dense);
    FUSEME_CHECK(ref.ok());
    expected = *ref;
  }

  PartialPlan Plan() const {
    return PartialPlan(&q.dag, {q.vT, q.mm, q.add, q.log, q.mul}, q.mul);
  }
};

class CfoCuboidSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, double>> {};

TEST_P(CfoCuboidSweep, MatchesReferenceForAnyPqr) {
  auto [p, q_, r, density] = GetParam();
  NmfCase c(26, 22, 18, density);  // K spans 3 blocks: R up to 3
  PartialPlan plan = c.Plan();
  StageContext ctx("cfo", TestCluster());
  auto result = CuboidFusedOperator::Execute(
      plan, Cuboid{p, q_, r}, c.bound.Inputs(6), &ctx);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_LE(
      DenseMatrix::MaxAbsDiff(result->blocks().ToDense(), c.expected),
      1e-9);
  StageStats stats = ctx.Finalize();
  EXPECT_GT(stats.consolidation_bytes, 0);
  EXPECT_GT(stats.flops, 0);
  EXPECT_EQ(stats.num_tasks, ctx.num_tasks());
  if (r > 1) {
    EXPECT_GT(stats.aggregation_bytes, 0);  // k-partials were shuffled
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CfoCuboidSweep,
    ::testing::Values(std::make_tuple(1, 1, 1, 0.1),
                      std::make_tuple(2, 2, 1, 0.1),
                      std::make_tuple(3, 2, 2, 0.1),
                      std::make_tuple(1, 1, 3, 0.1),
                      std::make_tuple(2, 3, 3, 0.05),
                      std::make_tuple(4, 3, 1, 1.0),
                      std::make_tuple(2, 2, 2, 1.0)));

TEST(CuboidFusedOperatorTest, RfoSpecialCaseMatches) {
  NmfCase c(26, 22, 10, 0.1);
  PartialPlan plan = c.Plan();
  // RFO = (I, J, 1): 4x3 grid of 8-blocks.
  StageContext ctx("rfo", TestCluster());
  auto result = CuboidFusedOperator::Execute(plan, Cuboid{4, 3, 1},
                                             c.bound.Inputs(6), &ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(
      DenseMatrix::MaxAbsDiff(result->blocks().ToDense(), c.expected),
      1e-9);
}

TEST(CuboidFusedOperatorTest, ReplicationGrowsWithQ) {
  NmfCase c(26, 22, 10, 0.1);
  PartialPlan plan = c.Plan();
  auto net_for = [&](Cuboid cb) {
    NmfCase fresh(26, 22, 10, 0.1);
    StageContext ctx("cfo", TestCluster());
    auto result = CuboidFusedOperator::Execute(plan, cb,
                                               fresh.bound.Inputs(6), &ctx);
    FUSEME_CHECK(result.ok());
    return ctx.Finalize().consolidation_bytes;
  };
  // U (the L-space input) is re-fetched by more tasks as Q grows.
  EXPECT_LT(net_for(Cuboid{2, 1, 1}), net_for(Cuboid{2, 3, 1}));
}

TEST(CuboidFusedOperatorTest, OutOfMemorySurfaceWhenBudgetTiny) {
  NmfCase c(26, 22, 10, 1.0);
  PartialPlan plan = c.Plan();
  StageContext ctx("cfo", TestCluster(/*budget_bytes=*/256));
  auto result = CuboidFusedOperator::Execute(plan, Cuboid{1, 1, 1},
                                             c.bound.Inputs(6), &ctx);
  EXPECT_TRUE(result.status().IsOutOfMemory());
}

TEST(CuboidFusedOperatorTest, AggregationRootFullSum) {
  // ALS weighted loss: sum((X!=0) * (X - U×V)^2).
  AlsLossQuery q = BuildAlsLoss(24, 20, 10, /*x_nnz=*/48);
  Bound bound;
  bound.BindSparse(q.X, RandomSparse(24, 20, 0.1, /*seed=*/11, 1.0, 2.0));
  bound.Bind(q.U, RandomDense(24, 10, /*seed=*/12, 0.1, 0.9));
  bound.Bind(q.V, RandomDense(10, 20, /*seed=*/13, 0.1, 0.9));
  auto expected = ReferenceEval(q.dag, q.loss, bound.dense);
  ASSERT_TRUE(expected.ok());

  PartialPlan plan(&q.dag, {q.mm, q.mask, q.sub, q.sq, q.mul, q.loss},
                   q.loss);
  for (Cuboid cb : {Cuboid{1, 1, 1}, Cuboid{2, 2, 1}, Cuboid{3, 2, 2}}) {
    Bound fresh = bound;
    fresh.dist.clear();
    StageContext ctx("cfo-agg", TestCluster());
    auto result =
        CuboidFusedOperator::Execute(plan, cb, fresh.Inputs(6), &ctx);
    ASSERT_TRUE(result.ok()) << result.status() << " at " << cb.ToString();
    DenseMatrix got = result->blocks().ToDense();
    ASSERT_EQ(got.rows(), 1);
    ASSERT_EQ(got.cols(), 1);
    EXPECT_NEAR(got(0, 0), (*expected)(0, 0), 1e-8) << cb.ToString();
  }
}

TEST(CuboidFusedOperatorTest, AggregationRootRowAndCol) {
  // rowSums(X * U) and colSums(X * U) as fused cell plans with agg tops.
  Dag dag;
  NodeId x = *dag.AddInput("X", 20, 12, 60);
  NodeId u = *dag.AddInput("U", 20, 12);
  NodeId mul = *dag.AddBinary(BinaryFn::kMul, x, u);
  NodeId row = *dag.AddUnaryAgg(AggFn::kSum, AggAxis::kRow, mul);
  Dag dag2;
  NodeId x2 = *dag2.AddInput("X", 20, 12, 60);
  NodeId u2 = *dag2.AddInput("U", 20, 12);
  NodeId mul2 = *dag2.AddBinary(BinaryFn::kMul, x2, u2);
  NodeId col = *dag2.AddUnaryAgg(AggFn::kSum, AggAxis::kCol, mul2);

  SparseMatrix xs = RandomSparse(20, 12, 0.25, /*seed=*/21, 1.0, 2.0);
  DenseMatrix ud = RandomDense(20, 12, /*seed=*/22, 0.5, 1.5);

  {
    Bound bound;
    bound.BindSparse(x, xs);
    bound.Bind(u, ud);
    auto expected = ReferenceEval(dag, row, bound.dense);
    ASSERT_TRUE(expected.ok());
    PartialPlan plan(&dag, {mul, row}, row);
    StageContext ctx("row", TestCluster());
    auto result = CuboidFusedOperator::Execute(plan, Cuboid{2, 2, 1},
                                               bound.Inputs(6), &ctx);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(
        DenseMatrix::MaxAbsDiff(result->blocks().ToDense(), *expected),
        1e-9);
  }
  {
    Bound bound;
    bound.BindSparse(x2, xs);
    bound.Bind(u2, ud);
    auto expected = ReferenceEval(dag2, col, bound.dense);
    ASSERT_TRUE(expected.ok());
    PartialPlan plan(&dag2, {mul2, col}, col);
    StageContext ctx("col", TestCluster());
    auto result = CuboidFusedOperator::Execute(plan, Cuboid{2, 2, 1},
                                               bound.Inputs(6), &ctx);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(
        DenseMatrix::MaxAbsDiff(result->blocks().ToDense(), *expected),
        1e-9);
  }
}

TEST(CuboidFusedOperatorTest, GnmfFusedPlanMatchesReference) {
  GnmfQuery q = BuildGnmf(26, 20, 6, /*x_nnz=*/104);
  Bound bound;
  bound.BindSparse(q.X, RandomSparse(26, 20, 0.2, /*seed=*/31, 1.0, 5.0));
  bound.Bind(q.V, RandomDense(26, 6, /*seed=*/32, 0.5, 1.5));
  bound.Bind(q.U, RandomDense(6, 20, /*seed=*/33, 0.5, 1.5));
  // Materialize vT first (it is a separate singleton stage in practice).
  auto vt_ref = ReferenceEval(q.dag, q.vT, bound.dense);
  ASSERT_TRUE(vt_ref.ok());
  bound.Bind(q.vT, *vt_ref);

  auto expected = ReferenceEval(q.dag, q.a5, bound.dense);
  ASSERT_TRUE(expected.ok());

  PartialPlan plan(&q.dag, {q.a1, q.a2, q.a3, q.a4, q.a5}, q.a5);
  StageContext ctx("gnmf-f1", TestCluster());
  auto result = CuboidFusedOperator::Execute(plan, Cuboid{1, 2, 2},
                                             bound.Inputs(6), &ctx);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_LE(DenseMatrix::MaxAbsDiff(result->blocks().ToDense(), *expected),
            1e-8);
}

TEST(BroadcastFusedOperatorTest, MatchesReference) {
  NmfCase c(26, 22, 10, 0.1);
  PartialPlan plan = c.Plan();
  StageContext ctx("bfo", TestCluster());
  auto result =
      BroadcastFusedOperator::Execute(plan, c.bound.Inputs(6), &ctx);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_LE(
      DenseMatrix::MaxAbsDiff(result->blocks().ToDense(), c.expected),
      1e-9);
  // Sides (U, V, and X here is main) are broadcast: consolidation exceeds
  // the sum of the side sizes.
  StageStats stats = ctx.Finalize();
  EXPECT_GT(stats.consolidation_bytes, 0);
}

TEST(BroadcastFusedOperatorTest, OomWhenSidesExceedBudget) {
  NmfCase c(26, 22, 18, 1.0);
  PartialPlan plan = c.Plan();
  // Budget below |U| + |V|.
  StageContext ctx("bfo", TestCluster(/*budget_bytes=*/4096));
  auto result =
      BroadcastFusedOperator::Execute(plan, c.bound.Inputs(6), &ctx);
  EXPECT_TRUE(result.status().IsOutOfMemory());
}

TEST(BroadcastFusedOperatorTest, SideMatricesReplicatePerTask) {
  // Consolidation = |main| + num_tasks · Σ|sides| (paper Table 1, BFO row).
  NmfCase c(26, 22, 10, 0.1);
  PartialPlan plan = c.Plan();
  StageContext ctx("bfo", TestCluster());
  auto result =
      BroadcastFusedOperator::Execute(plan, c.bound.Inputs(6), &ctx);
  ASSERT_TRUE(result.ok());
  StageStats stats = ctx.Finalize();
  const std::int64_t side_bytes =
      c.bound.blocked[c.q.U].SizeBytes() + c.bound.blocked[c.q.V].SizeBytes();
  const std::int64_t main_bytes = c.bound.blocked[c.q.X].SizeBytes();
  EXPECT_GE(stats.consolidation_bytes, stats.num_tasks * side_bytes);
  EXPECT_LE(stats.consolidation_bytes,
            stats.num_tasks * side_bytes + main_bytes);
}

TEST(BroadcastFusedOperatorTest, AggregationRoot) {
  AlsLossQuery q = BuildAlsLoss(24, 20, 10, /*x_nnz=*/48);
  Bound bound;
  bound.BindSparse(q.X, RandomSparse(24, 20, 0.1, /*seed=*/41, 1.0, 2.0));
  bound.Bind(q.U, RandomDense(24, 10, /*seed=*/42, 0.1, 0.9));
  bound.Bind(q.V, RandomDense(10, 20, /*seed=*/43, 0.1, 0.9));
  auto expected = ReferenceEval(q.dag, q.loss, bound.dense);
  ASSERT_TRUE(expected.ok());
  PartialPlan plan(&q.dag, {q.mm, q.mask, q.sub, q.sq, q.mul, q.loss},
                   q.loss);
  StageContext ctx("bfo-agg", TestCluster());
  auto result = BroadcastFusedOperator::Execute(plan, bound.Inputs(6), &ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->blocks().ToDense()(0, 0), (*expected)(0, 0), 1e-8);
}

}  // namespace
}  // namespace fuseme
