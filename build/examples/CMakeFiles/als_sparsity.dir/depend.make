# Empty dependencies file for als_sparsity.
# This may be replaced when dependencies are built.
