// Simulator: turns per-stage accounting into modeled elapsed time.
//
// Model (one stage): tasks are scheduled in waves over the N·Tc slots,
// with the stage's bytes and FLOPs spread evenly across its tasks.  Waves
// run back to back — a wave must finish before the next one launches — so
// each contributes its own busy window:
//
//   wave(n)   = max(net_share(n) · (1 + shuffle_cpu_factor), comp(n))
//     net_share(n) = n · bytes/task / (nodes_used(n) · B̂n)
//     comp(n)      = FLOPs/task / per-slot compute
//   elapsed   = Σ wave(n_w) + waves · task_launch_overhead
//
// A stage that fits in one wave reduces to the familiar
// max(net · (1+factor), comp) + overhead.  Communication and computation
// overlap within a wave (paper Eq. 2 takes the max), but Spark's shuffle
// burns CPU while moving data, which the paper calls out as the reason
// elapsed-time gaps exceed communication gaps; shuffle_cpu_factor models
// that.  The clock accumulates across stages and trips the timeout.

#ifndef FUSEME_RUNTIME_SIMULATOR_H_
#define FUSEME_RUNTIME_SIMULATOR_H_

#include <vector>

#include "common/status.h"
#include "runtime/cluster_config.h"
#include "runtime/stage.h"

namespace fuseme {

/// Cluster-time side effects of a stage's recovery, handed to the
/// Simulator so retries, backoff, stragglers, and degradation re-launches
/// all advance the modeled clock (and can deterministically trip the run
/// deadline, producing T.O. exactly like the paper's timed-out cells).
struct StageFaultEffects {
  /// Work-item re-launches (each costs one task_launch_overhead).
  std::int64_t retries = 0;
  /// Modeled exponential-backoff seconds accumulated before re-launches.
  double backoff_seconds = 0.0;
  /// Failed stage-level attempts (OOM degradation rungs), each costing a
  /// scheduling round trip.
  std::int64_t stage_relaunches = 0;
  /// Straggling tasks and the worst slowdown factor among them.
  std::int64_t stragglers = 0;
  double straggler_factor = 1.0;
  /// Speculative re-execution (Spark's spark.speculation): once a
  /// straggler runs `speculation_launch_factor` beyond the wave's modeled
  /// duration, a copy launches elsewhere and the first finisher wins.
  bool speculation = true;
  double speculation_launch_factor = 1.5;
};

class Simulator {
 public:
  explicit Simulator(const ClusterConfig& config) : config_(config) {}

  const ClusterConfig& config() const { return config_; }

  /// Computes stats->elapsed_seconds (recovery overhead included when
  /// `effects` is non-null), appends the stage to the history, and
  /// advances the clock.  Returns TimedOut when the cumulative clock
  /// passes the configured horizon.  `speculative_tasks` (optional)
  /// receives the number of speculative copies launched.
  Status CompleteStage(StageStats stats,
                       const StageFaultEffects* effects = nullptr,
                       std::int64_t* speculative_tasks = nullptr);

  /// Modeled elapsed for a stage without committing it to the clock.
  double EstimateStageSeconds(const StageStats& stats) const;

  /// Extra modeled seconds `effects` adds to `stats`: backoff, re-launch
  /// overheads, and the straggler tail — cut short by a speculative copy
  /// when that finishes first (`speculative_tasks` counts the copies).
  double RecoveryOverheadSeconds(const StageStats& stats,
                                 const StageFaultEffects& effects,
                                 std::int64_t* speculative_tasks =
                                     nullptr) const;

  double elapsed_seconds() const { return elapsed_seconds_; }
  const std::vector<StageStats>& stages() const { return stages_; }

  /// Sum of consolidation+aggregation bytes over completed stages — the
  /// paper's "communication cost".
  std::int64_t total_bytes() const;
  std::int64_t total_flops() const;

  void Reset() {
    elapsed_seconds_ = 0;
    stages_.clear();
  }

 private:
  ClusterConfig config_;
  double elapsed_seconds_ = 0.0;
  std::vector<StageStats> stages_;
};

}  // namespace fuseme

#endif  // FUSEME_RUNTIME_SIMULATOR_H_
