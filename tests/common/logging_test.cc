#include "common/logging.h"

#include <gtest/gtest.h>

#include <string>

namespace fuseme {
namespace {

/// Restores the global logging state (sink, hook, level) on scope exit so
/// test order never matters.
class ScopedLoggingState {
 public:
  ScopedLoggingState() : previous_level_(GetLogLevel()) {}
  ~ScopedLoggingState() {
    SetLogSink(nullptr);
    SetLogCounterHook(nullptr, nullptr);
    SetLogLevel(previous_level_);
  }

 private:
  LogLevel previous_level_;
};

TEST(LoggingTest, CaptureSinkReceivesFormattedLines) {
  ScopedLoggingState guard;
  SetLogLevel(LogLevel::kDebug);
  CaptureLogSink capture;
  EXPECT_EQ(SetLogSink(&capture), nullptr);

  FUSEME_LOG(Info) << "hello " << 42;
  FUSEME_LOG(Warning) << "uh oh";

  const auto messages = capture.messages();
  ASSERT_EQ(messages.size(), 2u);
  EXPECT_EQ(messages[0].first, LogLevel::kInfo);
  EXPECT_NE(messages[0].second.find("hello 42"), std::string::npos);
  EXPECT_EQ(capture.CountAt(LogLevel::kWarning), 1u);
  EXPECT_EQ(capture.CountAt(LogLevel::kError), 0u);

  // Restoring the default returns the capture sink.
  EXPECT_EQ(SetLogSink(nullptr), &capture);
}

TEST(LoggingTest, LevelFilterSuppressesSinkAndHook) {
  ScopedLoggingState guard;
  SetLogLevel(LogLevel::kError);
  CaptureLogSink capture;
  SetLogSink(&capture);
  int hook_calls = 0;
  SetLogCounterHook(
      [](LogLevel, void* arg) { ++*static_cast<int*>(arg); }, &hook_calls);

  FUSEME_LOG(Info) << "filtered out";
  FUSEME_LOG(Error) << "kept";

  EXPECT_EQ(capture.messages().size(), 1u);
  EXPECT_EQ(capture.CountAt(LogLevel::kError), 1u);
  EXPECT_EQ(hook_calls, 1);
}

TEST(LoggingTest, CounterHookSeesEveryEmittedLevel) {
  ScopedLoggingState guard;
  SetLogLevel(LogLevel::kDebug);
  CaptureLogSink capture;  // keep the test's own stderr clean
  SetLogSink(&capture);
  int counts[4] = {0, 0, 0, 0};
  SetLogCounterHook(
      [](LogLevel level, void* arg) {
        ++static_cast<int*>(arg)[static_cast<int>(level)];
      },
      counts);

  FUSEME_LOG(Debug) << "d";
  FUSEME_LOG(Info) << "i";
  FUSEME_LOG(Info) << "i";
  FUSEME_LOG(Warning) << "w";

  EXPECT_EQ(counts[0], 1);
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(counts[3], 0);

  SetLogCounterHook(nullptr, nullptr);
  FUSEME_LOG(Info) << "no hook anymore";
  EXPECT_EQ(counts[1], 2);
}

TEST(LoggingTest, LevelLabelsAreLowercase) {
  EXPECT_STREQ(LogLevelLabel(LogLevel::kDebug), "debug");
  EXPECT_STREQ(LogLevelLabel(LogLevel::kInfo), "info");
  EXPECT_STREQ(LogLevelLabel(LogLevel::kWarning), "warning");
  EXPECT_STREQ(LogLevelLabel(LogLevel::kError), "error");
}

}  // namespace
}  // namespace fuseme
