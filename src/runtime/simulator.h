// Simulator: turns per-stage accounting into modeled elapsed time.
//
// Model (one stage): tasks are scheduled in waves over the N·Tc slots,
// with the stage's bytes and FLOPs spread evenly across its tasks.  Waves
// run back to back — a wave must finish before the next one launches — so
// each contributes its own busy window:
//
//   wave(n)   = max(net_share(n) · (1 + shuffle_cpu_factor), comp(n))
//     net_share(n) = n · bytes/task / (nodes_used(n) · B̂n)
//     comp(n)      = FLOPs/task / per-slot compute
//   elapsed   = Σ wave(n_w) + waves · task_launch_overhead
//
// A stage that fits in one wave reduces to the familiar
// max(net · (1+factor), comp) + overhead.  Communication and computation
// overlap within a wave (paper Eq. 2 takes the max), but Spark's shuffle
// burns CPU while moving data, which the paper calls out as the reason
// elapsed-time gaps exceed communication gaps; shuffle_cpu_factor models
// that.  The clock accumulates across stages and trips the timeout.

#ifndef FUSEME_RUNTIME_SIMULATOR_H_
#define FUSEME_RUNTIME_SIMULATOR_H_

#include <vector>

#include "common/status.h"
#include "runtime/cluster_config.h"
#include "runtime/stage.h"

namespace fuseme {

class Simulator {
 public:
  explicit Simulator(const ClusterConfig& config) : config_(config) {}

  const ClusterConfig& config() const { return config_; }

  /// Computes stats->elapsed_seconds, appends the stage to the history, and
  /// advances the clock.  Returns TimedOut when the cumulative clock passes
  /// the configured horizon.
  Status CompleteStage(StageStats stats);

  /// Modeled elapsed for a stage without committing it to the clock.
  double EstimateStageSeconds(const StageStats& stats) const;

  double elapsed_seconds() const { return elapsed_seconds_; }
  const std::vector<StageStats>& stages() const { return stages_; }

  /// Sum of consolidation+aggregation bytes over completed stages — the
  /// paper's "communication cost".
  std::int64_t total_bytes() const;
  std::int64_t total_flops() const;

  void Reset() {
    elapsed_seconds_ = 0;
    stages_.clear();
  }

 private:
  ClusterConfig config_;
  double elapsed_seconds_ = 0.0;
  std::vector<StageStats> stages_;
};

}  // namespace fuseme

#endif  // FUSEME_RUNTIME_SIMULATOR_H_
