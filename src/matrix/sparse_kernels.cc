#include "matrix/sparse_kernels.h"

#include <algorithm>
#include <atomic>
#include <functional>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace fuseme {

namespace {

// Process-wide counters.  Relaxed is enough: each is an independent
// monotonic total, snapshots only feed telemetry.
std::atomic<std::int64_t> g_spmm_sd_calls{0};
std::atomic<std::int64_t> g_spmm_ds_calls{0};
std::atomic<std::int64_t> g_spmm_ss_calls{0};
std::atomic<std::int64_t> g_transpose_spmm_calls{0};
std::atomic<std::int64_t> g_sddmm_calls{0};
std::atomic<std::int64_t> g_merge_join_calls{0};
std::atomic<std::int64_t> g_flops{0};
std::atomic<std::int64_t> g_sddmm_dots{0};
std::atomic<std::int64_t> g_parallel_launches{0};

void Bump(std::atomic<std::int64_t>& counter, std::int64_t amount = 1) {
  counter.fetch_add(amount, std::memory_order_relaxed);
}

void AddFlops(std::int64_t* flops, std::int64_t amount) {
  if (flops != nullptr) *flops += amount;
  Bump(g_flops, amount);
}

/// Runs `range(i0, i1)` over [0, rows) — split into kSparseRowSlab slabs
/// on the global pool when `est_flops` clears the threshold, serially (as
/// one range) otherwise.  Ranges are disjoint, and every kernel below
/// keeps the serial per-row order inside a range, so the output is
/// bitwise-identical either way.  A call issued from inside a pool worker
/// (a parallel distributed operator) runs inline — one level of
/// parallelism, like the dense GEMM.
void ForRowSlabs(std::int64_t rows, std::int64_t est_flops,
                 const std::function<void(std::int64_t, std::int64_t)>& range) {
  const std::int64_t slabs = (rows + kSparseRowSlab - 1) / kSparseRowSlab;
  if (slabs > 1 && est_flops >= kSparseParallelFlops &&
      GlobalParallelism() > 1) {
    Bump(g_parallel_launches);
    GlobalThreadPool()->ParallelFor(0, slabs, [&](std::int64_t slab) {
      const std::int64_t i0 = slab * kSparseRowSlab;
      range(i0, std::min(rows, i0 + kSparseRowSlab));
    });
    return;
  }
  range(0, rows);
}

}  // namespace

SparseKernelStats SparseKernelStatsSnapshot() {
  SparseKernelStats s;
  s.spmm_sparse_dense_calls = g_spmm_sd_calls.load(std::memory_order_relaxed);
  s.spmm_dense_sparse_calls = g_spmm_ds_calls.load(std::memory_order_relaxed);
  s.spmm_sparse_sparse_calls = g_spmm_ss_calls.load(std::memory_order_relaxed);
  s.transpose_spmm_calls =
      g_transpose_spmm_calls.load(std::memory_order_relaxed);
  s.sddmm_calls = g_sddmm_calls.load(std::memory_order_relaxed);
  s.ewise_merge_join_calls = g_merge_join_calls.load(std::memory_order_relaxed);
  s.flops = g_flops.load(std::memory_order_relaxed);
  s.sddmm_dots = g_sddmm_dots.load(std::memory_order_relaxed);
  s.parallel_launches = g_parallel_launches.load(std::memory_order_relaxed);
  return s;
}

void SpmmAccSparseDense(DenseMatrix* acc, const SparseMatrix& a,
                        const DenseMatrix& b, std::int64_t* flops) {
  FUSEME_CHECK_EQ(a.cols(), b.rows());
  FUSEME_CHECK_EQ(acc->rows(), a.rows());
  FUSEME_CHECK_EQ(acc->cols(), b.cols());
  Bump(g_spmm_sd_calls);
  const std::int64_t n = b.cols();
  const std::int64_t total = 2 * a.nnz() * n;
  const auto& rp = a.row_ptr();
  const auto& ci = a.col_idx();
  const auto& vals = a.values();
  ForRowSlabs(a.rows(), total, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      double* out = acc->row(i);
      for (std::int64_t p = rp[i]; p < rp[i + 1]; ++p) {
        const double va = vals[p];
        const double* b_row = b.row(ci[p]);
        for (std::int64_t j = 0; j < n; ++j) out[j] += va * b_row[j];
      }
    }
  });
  AddFlops(flops, total);
}

void SpmmAccDenseSparse(DenseMatrix* acc, const DenseMatrix& a,
                        const SparseMatrix& b, std::int64_t* flops) {
  FUSEME_CHECK_EQ(a.cols(), b.rows());
  FUSEME_CHECK_EQ(acc->rows(), a.rows());
  FUSEME_CHECK_EQ(acc->cols(), b.cols());
  Bump(g_spmm_ds_calls);
  const std::int64_t k = a.cols();
  const std::int64_t total = 2 * a.rows() * b.nnz();
  const auto& rp = b.row_ptr();
  const auto& ci = b.col_idx();
  const auto& vals = b.values();
  ForRowSlabs(a.rows(), total, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      double* out = acc->row(i);
      const double* a_row = a.row(i);
      // Zero a-entries are multiplied through, not skipped: skipping could
      // flip a -0.0 accumulator to +0.0 or drop a NaN/Inf propagation,
      // breaking bitwise parity with the k-outer formulation.
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const double va = a_row[kk];
        for (std::int64_t p = rp[kk]; p < rp[kk + 1]; ++p) {
          out[ci[p]] += va * vals[p];
        }
      }
    }
  });
  AddFlops(flops, total);
}

void SpmmAccSparseSparse(DenseMatrix* acc, const SparseMatrix& a,
                         const SparseMatrix& b, std::int64_t* flops) {
  FUSEME_CHECK_EQ(a.cols(), b.rows());
  FUSEME_CHECK_EQ(acc->rows(), a.rows());
  FUSEME_CHECK_EQ(acc->cols(), b.cols());
  Bump(g_spmm_ss_calls);
  const auto& arp = a.row_ptr();
  const auto& aci = a.col_idx();
  const auto& av = a.values();
  const auto& brp = b.row_ptr();
  const auto& bci = b.col_idx();
  const auto& bv = b.values();
  // The product count is a pure function of the two patterns, so it can be
  // charged without per-slab counters.
  std::int64_t products = 0;
  for (std::int64_t p = 0; p < a.nnz(); ++p) {
    products += brp[aci[p] + 1] - brp[aci[p]];
  }
  ForRowSlabs(a.rows(), 2 * products, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      double* out = acc->row(i);
      for (std::int64_t p = arp[i]; p < arp[i + 1]; ++p) {
        const double va = av[p];
        const std::int64_t kk = aci[p];
        for (std::int64_t pb = brp[kk]; pb < brp[kk + 1]; ++pb) {
          out[bci[pb]] += va * bv[pb];
        }
      }
    }
  });
  AddFlops(flops, 2 * products);
}

void TransposeSpmmAcc(DenseMatrix* acc, const SparseMatrix& a,
                      const Block& b, std::int64_t* flops) {
  FUSEME_CHECK(b.is_real());
  FUSEME_CHECK_EQ(a.rows(), b.rows());  // contraction dimension
  FUSEME_CHECK_EQ(acc->rows(), a.cols());
  FUSEME_CHECK_EQ(acc->cols(), b.cols());
  if (b.is_zero() || a.nnz() == 0) return;
  Bump(g_transpose_spmm_calls);
  const auto& rp = a.row_ptr();
  const auto& ci = a.col_idx();
  const auto& vals = a.values();
  const bool b_dense = b.kind() == Block::Kind::kDense;

  std::int64_t total;
  if (b_dense) {
    total = 2 * a.nnz() * b.cols();
  } else {
    const auto& brp = b.sparse().row_ptr();
    total = 0;
    for (std::int64_t kk = 0; kk < a.rows(); ++kk) {
      total += 2 * (rp[kk + 1] - rp[kk]) * (brp[kk + 1] - brp[kk]);
    }
  }

  // Each slab owns output rows [o0, o1) — a's *columns* — and scans a once,
  // processing only the entries that land in its slab.  For one output
  // element the contributions arrive in ascending a-row (= k) order, the
  // same order a materialized-transpose SpMM would produce.
  auto range = [&](std::int64_t o0, std::int64_t o1) {
    for (std::int64_t kk = 0; kk < a.rows(); ++kk) {
      for (std::int64_t p = rp[kk]; p < rp[kk + 1]; ++p) {
        const std::int64_t i = ci[p];
        if (i < o0 || i >= o1) continue;
        const double va = vals[p];
        double* out = acc->row(i);
        if (b_dense) {
          const double* b_row = b.dense().row(kk);
          const std::int64_t n = b.cols();
          for (std::int64_t j = 0; j < n; ++j) out[j] += va * b_row[j];
        } else {
          const SparseMatrix& sb = b.sparse();
          for (std::int64_t pb = sb.row_ptr()[kk]; pb < sb.row_ptr()[kk + 1];
               ++pb) {
            out[sb.col_idx()[pb]] += va * sb.values()[pb];
          }
        }
      }
    }
  };
  ForRowSlabs(acc->rows(), total, range);
  AddFlops(flops, total);
}

void SddmmAcc(const SparseMatrix& mask, const Block& a, const Block& b,
              std::vector<double>* acc, std::int64_t* flops) {
  FUSEME_CHECK(a.is_real() && b.is_real());
  FUSEME_CHECK_EQ(a.cols(), b.rows());
  FUSEME_CHECK_EQ(mask.rows(), a.rows());
  FUSEME_CHECK_EQ(mask.cols(), b.cols());
  FUSEME_CHECK_EQ(static_cast<std::int64_t>(acc->size()), mask.nnz());
  Bump(g_sddmm_calls);
  Bump(g_sddmm_dots, mask.nnz());
  const std::int64_t kdim = a.cols();
  const std::int64_t total = 2 * mask.nnz() * kdim;
  const auto& rp = mask.row_ptr();
  const auto& ci = mask.col_idx();
  const bool both_dense = a.kind() == Block::Kind::kDense &&
                          b.kind() == Block::Kind::kDense;
  // Every k term is added, zeros included, ascending — bitwise-identical
  // to summing At(i,k)·At(k,j) element by element.
  auto range = [&](std::int64_t i0, std::int64_t i1) {
    if (both_dense) {
      const DenseMatrix& da = a.dense();
      const DenseMatrix& db = b.dense();
      const std::int64_t ldb = db.cols();
      for (std::int64_t i = i0; i < i1; ++i) {
        const double* a_row = da.row(i);
        for (std::int64_t p = rp[i]; p < rp[i + 1]; ++p) {
          const double* b_col = db.row(0) + ci[p];
          double s = (*acc)[static_cast<std::size_t>(p)];
          for (std::int64_t kk = 0; kk < kdim; ++kk) {
            s += a_row[kk] * b_col[kk * ldb];
          }
          (*acc)[static_cast<std::size_t>(p)] = s;
        }
      }
      return;
    }
    for (std::int64_t i = i0; i < i1; ++i) {
      for (std::int64_t p = rp[i]; p < rp[i + 1]; ++p) {
        const std::int64_t j = ci[p];
        double s = (*acc)[static_cast<std::size_t>(p)];
        for (std::int64_t kk = 0; kk < kdim; ++kk) {
          s += a.At(i, kk) * b.At(kk, j);
        }
        (*acc)[static_cast<std::size_t>(p)] = s;
      }
    }
  };
  ForRowSlabs(mask.rows(), total, range);
  AddFlops(flops, total);
}

SparseMatrix EwiseMulMergeJoin(const SparseMatrix& a, const SparseMatrix& b,
                               std::int64_t* flops) {
  FUSEME_CHECK_EQ(a.rows(), b.rows());
  FUSEME_CHECK_EQ(a.cols(), b.cols());
  Bump(g_merge_join_calls);
  const auto& arp = a.row_ptr();
  const auto& aci = a.col_idx();
  const auto& av = a.values();
  const auto& brp = b.row_ptr();
  const auto& bci = b.col_idx();
  const auto& bv = b.values();
  std::vector<std::int64_t> row_ptr(static_cast<std::size_t>(a.rows()) + 1, 0);
  std::vector<std::int64_t> col_idx;
  std::vector<double> values;
  const std::int64_t bound = std::min(a.nnz(), b.nnz());
  col_idx.reserve(static_cast<std::size_t>(bound));
  values.reserve(static_cast<std::size_t>(bound));
  for (std::int64_t i = 0; i < a.rows(); ++i) {
    std::int64_t pa = arp[i], pb = brp[i];
    const std::int64_t ae = arp[i + 1], be = brp[i + 1];
    while (pa < ae && pb < be) {
      const std::int64_t ja = aci[pa], jb = bci[pb];
      if (ja < jb) {
        ++pa;
      } else if (jb < ja) {
        ++pb;
      } else {
        const double prod = av[pa] * bv[pb];
        if (prod != 0.0) {
          col_idx.push_back(ja);
          values.push_back(prod);
        }
        ++pa;
        ++pb;
      }
    }
    row_ptr[static_cast<std::size_t>(i) + 1] =
        static_cast<std::int64_t>(col_idx.size());
  }
  AddFlops(flops, bound);
  return SparseMatrix::FromCsr(a.rows(), a.cols(), std::move(row_ptr),
                               std::move(col_idx), std::move(values));
}

}  // namespace fuseme
