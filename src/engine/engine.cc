#include "engine/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "common/string_util.h"
#include "engine/compiled_plan.h"
#include "engine/solver_registry.h"
#include "fusion/sparsity_analysis.h"
#include "matrix/block.h"
#include "ops/fused_operator.h"
#include "telemetry/event_names.h"
#include "telemetry/metric_names.h"
#include "telemetry/metrics.h"
#include "telemetry/tracer.h"
#include "verify/plan_verifier.h"

namespace fuseme {

namespace {

/// Straggler enumeration bound per stage: analytic paper-scale stages can
/// model millions of tasks, and scanning the whole schedule would swamp
/// the run for no modeling benefit.  The scan is deterministic either way.
constexpr std::int64_t kStragglerScanCap = 65536;

const char* RunStatusLabel(const Status& status) {
  if (status.ok()) return "ok";
  if (status.IsOutOfMemory()) return "out_of_memory";
  if (status.IsTimedOut()) return "timed_out";
  return "error";
}

/// Mirrors a finished stage's accounting into the engine-wide metric
/// families (telemetry/metric_names.h).  `pred` supplies the MemEst the
/// stage was admitted under; an actual per-task high-water above it counts
/// as a memory overrun.
void RecordStageMetrics(MetricsRegistry* metrics, const StageStats& stats,
                        double wall_seconds, const StagePrediction& pred) {
  if (metrics == nullptr) return;
  metrics->GetCounter(metric_names::kStages)->Increment();
  metrics->GetCounter(metric_names::kStageTasks)
      ->Add(std::max<std::int64_t>(stats.num_tasks, 0));
  metrics
      ->GetCounter(metric_names::kStageShuffleBytes,
                   {{"cause", "consolidation"}})
      ->Add(std::max<std::int64_t>(stats.consolidation_bytes, 0));
  metrics
      ->GetCounter(metric_names::kStageShuffleBytes,
                   {{"cause", "aggregation"}})
      ->Add(std::max<std::int64_t>(stats.aggregation_bytes, 0));
  metrics->GetCounter(metric_names::kStageFlops)
      ->Add(std::max<std::int64_t>(stats.flops, 0));
  metrics->GetHistogram(metric_names::kStageSeconds, DefaultTimeBoundaries())
      ->Observe(wall_seconds);
  metrics->GetGauge(metric_names::kTaskMemoryBytes)
      ->Set(static_cast<double>(stats.max_task_memory));
  if (pred.present &&
      static_cast<double>(stats.max_task_memory) > pred.mem_per_task) {
    metrics->GetCounter(metric_names::kStageMemoryOverruns)->Increment();
  }
}

}  // namespace

std::string_view OperatorKindName(OperatorKind kind) {
  switch (kind) {
    case OperatorKind::kCfo:
      return "CFO";
    case OperatorKind::kBfo:
      return "BFO";
    case OperatorKind::kRfo:
      return "RFO";
    case OperatorKind::kCpmm:
      return "cpmm";
    case OperatorKind::kAuto:
      break;
  }
  return "?";
}

std::string_view SystemModeName(SystemMode mode) {
  switch (mode) {
    case SystemMode::kFuseMe:
      return "FuseME";
    case SystemMode::kSystemDs:
      return "SystemDS";
    case SystemMode::kMatFast:
      return "MatFast";
    case SystemMode::kDistMe:
      return "DistME";
    case SystemMode::kTensorFlow:
      return "TensorFlow";
  }
  return "?";
}

std::string ExecutionReport::Summary() const {
  if (status.IsOutOfMemory()) return "O.O.M. (" + status.message() + ")";
  if (status.IsTimedOut()) return "T.O. (" + status.message() + ")";
  if (!status.ok()) return status.ToString();
  std::string out = HumanSeconds(elapsed_seconds) + ", " +
                    HumanBytes(static_cast<double>(total_bytes())) +
                    " shuffled, " + std::to_string(stages.size()) + " stages";
  const std::int64_t retries = total_retries();
  if (retries > 0) {
    out += ", " + std::to_string(retries) + " retr" +
           (retries == 1 ? "y" : "ies");
  }
  if (!degradations.empty()) {
    out += ", " + std::to_string(degradations.size()) + " degradation" +
           (degradations.size() == 1 ? "" : "s");
  }
  return out;
}

Engine::Engine(ValidatedTag, EngineOptions options)
    : options_(std::move(options)), model_(options_.cluster) {
  if (options_.faults.enabled()) injector_.emplace(options_.faults);
}

Engine::Engine(EngineOptions options)
    : Engine(ValidatedTag{}, std::move(options)) {
  const Status valid = options_.Validate();
  FUSEME_CHECK(valid.ok()) << valid.message();
  const Status started = StartObservability();
  FUSEME_CHECK(started.ok()) << started.message();
}

Result<Engine> Engine::Create(EngineOptions options) {
  FUSEME_RETURN_IF_ERROR(options.Validate());
  Engine engine(ValidatedTag{}, std::move(options));
  FUSEME_RETURN_IF_ERROR(engine.StartObservability());
  return engine;
}

Status Engine::StartObservability() {
  // One steady-clock epoch for every sink: the tracer's when tracing is
  // on, so /flightz and /seriesz timestamps correlate with TRACE_*.json
  // spans by subtraction.
  const std::chrono::steady_clock::time_point epoch =
      options_.tracer != nullptr ? options_.tracer->epoch()
                                 : std::chrono::steady_clock::now();
  if (options_.observability.any_enabled()) {
    FUSEME_ASSIGN_OR_RETURN(
        plane_, ObservabilityPlane::Start(options_.observability,
                                          options_.metrics, epoch));
  }
  journal_ = options_.journal != nullptr
                 ? options_.journal
                 : (plane_ != nullptr ? plane_->journal() : nullptr);
  return Status::OK();
}

SolverEnv Engine::MakeSolverEnv(bool silent) const {
  SolverEnv env;
  env.model = &model_;
  env.pruned_search = options_.pruned_search;
  env.balance_sparsity = options_.balance_sparsity;
  env.metrics = silent ? nullptr : options_.metrics;
  env.journal = silent ? nullptr : journal_;
  return env;
}

FusionPlanSet Engine::MakePlans(const Dag& dag) const {
  const bool verify = options_.verify != VerifyLevel::kOff;
  PlanVerifier verifier(&model_);
  verifier.set_metrics(options_.metrics);
  const auto plan_begin = std::chrono::steady_clock::now();

  FusionPlanSet set;
  switch (options_.system) {
    case SystemMode::kFuseMe: {
      CfgPlanner planner(&model_);
      planner.set_metrics(options_.metrics);
      if (!verify) {
        set = planner.Plan(dag);
        break;
      }
      // Verified path: check every PartialPlan the exploration and
      // exploitation phases emit, not just the finalized set.  CFG
      // candidates grow from matmul seeds, so require_matmul holds for
      // them (final sets legitimately add matmul-free singletons).
      auto check = [&](const std::vector<PartialPlan>& candidates) {
        for (const PartialPlan& p : candidates) {
          std::vector<VerifierDiagnostic> d =
              verifier.VerifyPlan(dag, p, /*require_matmul=*/true);
          set.diagnostics.insert(set.diagnostics.end(), d.begin(), d.end());
        }
      };
      std::vector<PartialPlan> candidates = planner.ExplorationPhase(dag);
      check(candidates);
      std::vector<PartialPlan> refined =
          planner.ExploitationPhase(dag, std::move(candidates));
      check(refined);
      FusionPlanSet finalized = FinalizePlanSet(dag, std::move(refined),
                                                "CFG(explore+exploit)");
      set.plans = std::move(finalized.plans);
      set.description = std::move(finalized.description);
      break;
    }
    case SystemMode::kSystemDs:
      set = GenPlanner().Plan(dag);
      break;
    case SystemMode::kMatFast:
    case SystemMode::kTensorFlow:
      set = FoldedPlanner().Plan(dag);
      break;
    case SystemMode::kDistMe:
      set = NoFusionPlanner().Plan(dag);
      break;
  }
  if (verify) {
    // Planner-generated sets must cover every operator node exactly once;
    // structural per-plan and stage-graph rules run again in RunWithPlans
    // (which also accepts caller-supplied, possibly partial, sets).
    std::vector<VerifierDiagnostic> d =
        verifier.VerifyPlanSet(dag, set, /*require_coverage=*/true);
    set.diagnostics.insert(set.diagnostics.end(), d.begin(), d.end());
  }
  if (options_.metrics != nullptr) {
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      plan_begin)
            .count();
    options_.metrics
        ->GetHistogram(metric_names::kPlannerWallSeconds,
                       DefaultTimeBoundaries())
        ->Observe(wall);
    options_.metrics->GetCounter(metric_names::kPlannerPlans)
        ->Add(static_cast<std::int64_t>(set.plans.size()));
  }
  if (journal_ != nullptr) {
    journal_->Emit(LogLevel::kInfo, event_names::kPlannerPlans,
                   {{"planner", set.description},
                    {"plans", std::to_string(set.plans.size())}});
  }
  return set;
}

OperatorKind Engine::PickOperator(
    const PartialPlan& plan,
    const std::vector<NodeId>& bound_matrices) const {
  const bool has_matmul = !plan.MatMuls().empty();
  switch (options_.system) {
    case SystemMode::kFuseMe:
    case SystemMode::kDistMe:
      return OperatorKind::kCfo;
    case SystemMode::kMatFast:
    case SystemMode::kTensorFlow:
      // MatFast (and XLA's data-parallel execution) broadcast the smaller
      // matmul operand; folded element-wise chains co-partition inputs.
      return has_matmul ? OperatorKind::kBfo : OperatorKind::kCfo;
    case SystemMode::kSystemDs: {
      if (!has_matmul) return OperatorKind::kCfo;
      // §6.2 selection rule: BFO when the main matrix is repartitioned
      // into fewer Spark partitions than its block-grid dimensions.
      const Dag& dag = plan.dag();
      NodeId main_input = kInvalidNode;
      std::int64_t main_cells = -1;
      for (const NodeId id : bound_matrices) {
        const Node& n = dag.node(id);
        const std::int64_t cells = n.rows * n.cols;
        if (cells > main_cells) {
          main_cells = cells;
          main_input = id;
        }
      }
      if (main_input == kInvalidNode) return OperatorKind::kBfo;
      const Node& main = dag.node(main_input);
      const std::int64_t main_bytes = SizeOf(dag, main_input);
      const std::int64_t bs = options_.cluster.block_size;
      const std::int64_t gi = (main.rows + bs - 1) / bs;
      const std::int64_t gj = (main.cols + bs - 1) / bs;
      const std::int64_t parts =
          EstimateSparkPartitions(main_bytes, gi * gj);
      if (parts >= gi && parts >= gj) return OperatorKind::kRfo;
      // SystemDS only picks the broadcast operator when the side matrices
      // actually fit in a task (mapmm); otherwise it falls back to the
      // replication-based shuffle operator (cpmm/rmm).
      std::int64_t side_bytes = 0;
      for (const NodeId id : bound_matrices) {
        if (id != main_input) side_bytes += SizeOf(dag, id);
      }
      const bool sides_fit =
          side_bytes + main_bytes / options_.cluster.total_tasks() <=
          options_.cluster.task_memory_budget;
      return sides_fit ? OperatorKind::kBfo : OperatorKind::kCpmm;
    }
  }
  return OperatorKind::kCfo;
}

Result<StagePrediction> Engine::PredictStage(const PartialPlan& plan,
                                             OperatorKind kind,
                                             const FusedInputs* inputs,
                                             double budget_factor) const {
  // Resolve silently: NextDegradation probes the ladder through here and
  // repeated probes must not inflate the resolution metrics.
  const SolverEnv silent = MakeSolverEnv(/*silent=*/true);
  const StageSolver* solver =
      SolverRegistry::Global().Resolve(silent, kind, plan);
  if (solver == nullptr) return Status::Internal("unresolved operator kind");
  return solver->Predict(MakeSolverEnv(), plan, inputs, budget_factor);
}

Result<Engine::DegradationStep> Engine::NextDegradation(
    const PartialPlan& plan, OperatorKind kind, const StagePrediction& failed,
    const FusedInputs* inputs, double budget_factor) const {
  // cpmm is the ladder's last rung; there is nothing below it.
  if (kind == OperatorKind::kCpmm) {
    return Status::OutOfMemory(
        "degradation ladder exhausted (already at cpmm) for " +
        plan.ToString());
  }
  // Broadcast/replication operators carry no cuboid to shrink: degrade to
  // the optimizer-chosen CFO, which partitions what BFO/RFO broadcast or
  // replicate wholesale.
  if (kind == OperatorKind::kBfo || kind == OperatorKind::kRfo) {
    Result<StagePrediction> pred =
        PredictStage(plan, OperatorKind::kCfo, inputs, 1.0);
    if (pred.ok()) {
      return DegradationStep{OperatorKind::kCfo, *std::move(pred), 1.0,
                             "shrink_cuboid"};
    }
  } else {
    // CFO: re-optimize under a shrinking modeled budget until the search
    // picks a different (finer) cuboid.
    double factor = budget_factor;
    while (factor > 1.0 / 1024.0) {
      factor *= 0.5;
      Result<StagePrediction> pred =
          PredictStage(plan, OperatorKind::kCfo, inputs, factor);
      if (!pred.ok()) break;  // nothing feasible under the tighter budget
      if (!failed.present || !(pred->cuboid == failed.cuboid)) {
        return DegradationStep{OperatorKind::kCfo, *std::move(pred), factor,
                               "shrink_cuboid"};
      }
    }
  }
  // Final rung: the (1,1,R) shuffle matmul, feasible only for plans whose
  // output merges coordinate-wise.
  if (!plan.MatMuls().empty() && CuboidSupportsKSplit(plan)) {
    Result<StagePrediction> pred =
        PredictStage(plan, OperatorKind::kCpmm, inputs, 1.0);
    if (pred.ok()) {
      return DegradationStep{OperatorKind::kCpmm, *std::move(pred), 1.0,
                             "cpmm"};
    }
  }
  return Status::OutOfMemory("degradation ladder exhausted for " +
                             plan.ToString());
}

Result<DistributedMatrix> Engine::RunPlanAnalytic(const PartialPlan& plan,
                                                  OperatorKind kind,
                                                  const StagePrediction& pred,
                                                  StageStats* stats) const {
  const Dag& dag = plan.dag();
  const ClusterConfig& cluster = options_.cluster;
  const Node& root = dag.node(plan.root());

  auto make_output = [&]() {
    BlockedMatrix meta = BlockedMatrix::MakeMeta(
        root.rows, root.cols, root.nnz, cluster.block_size);
    // Mirror the real executor's output partitioning so downstream
    // analytic predictions see the partition counts real mode would.
    return DistributedMatrix::Create(std::move(meta), PartitionScheme::kGrid,
                                     std::max(pred.num_tasks, 1));
  };

  // A matmul-bearing stage shuffle-writes its output for downstream
  // stages (wide dependency); element-wise stages hand their output over
  // as a narrow dependency.
  const std::int64_t output_write =
      plan.MatMuls().empty() ? 0 : SizeOf(dag, plan.root());

  stats->num_tasks = pred.num_tasks;
  stats->consolidation_bytes = static_cast<std::int64_t>(pred.net_bytes);
  stats->aggregation_bytes =
      static_cast<std::int64_t>(pred.agg_bytes) + output_write;
  stats->flops = static_cast<std::int64_t>(pred.flops);
  stats->max_task_memory = static_cast<std::int64_t>(pred.mem_per_task);

  switch (kind) {
    case OperatorKind::kCfo:
      // The prediction already models the cell-stage narrow-dependency
      // consolidation (see PredictStage); nothing more to adjust.
      return make_output();
    case OperatorKind::kRfo: {
      if (pred.mem_per_task >
          static_cast<double>(cluster.task_memory_budget)) {
        return Status::OutOfMemory("RFO exceeds the per-task budget on " +
                                   plan.ToString());
      }
      return make_output();
    }
    case OperatorKind::kCpmm:
      return make_output();
    case OperatorKind::kBfo: {
      const InputSplit split = SplitPlanInputs(plan);
      if (pred.mem_per_task >
          static_cast<double>(cluster.task_memory_budget)) {
        return Status::OutOfMemory(
            "BFO broadcast of " +
            HumanBytes(static_cast<double>(split.side_bytes)) +
            " side matrices exceeds the per-task budget on " +
            plan.ToString());
      }
      return make_output();
    }
    case OperatorKind::kAuto:
      break;
  }
  return Status::Internal("unresolved operator kind");
}

Engine::RunResult Engine::ExecuteCompiled(
    const Dag& dag, const FusionPlanSet& plans, const CompiledStageTable& table,
    const std::map<NodeId, BlockedMatrix>& inputs,
    bool trust_cached_verification) const {
  RunResult out;
  out.report.plan_description = table.description;
  if (options_.tracer != nullptr) options_.tracer->NameCurrentThread("driver");
  if (journal_ != nullptr) {
    journal_->Emit(
        LogLevel::kInfo, event_names::kRunStart,
        {{"system", std::string(SystemModeName(options_.system))},
         {"mode", options_.analytic ? "analytic" : "real"},
         {"plans", std::to_string(plans.plans.size())}});
  }

  PlanVerifier verifier(&model_);
  verifier.set_metrics(options_.metrics);
  if (options_.verify != VerifyLevel::kOff) {
    // CompileStages already ran the structural verification and cached the
    // diagnostics in the table; replay them instead of re-verifying on
    // every execute.  A table compiled without the verifier, and a
    // kParanoid engine on the compile-once/execute-many path, still get a
    // full fresh pass here.
    std::vector<VerifierDiagnostic> diags = table.diagnostics;
    if (!table.verified || (!trust_cached_verification &&
                            options_.verify == VerifyLevel::kParanoid)) {
      std::vector<VerifierDiagnostic> more =
          verifier.Verify(dag, plans, options_.verify);
      diags.insert(diags.end(), more.begin(), more.end());
    }
    if (!diags.empty()) {
      out.report.status = Status::Internal(
          "plan verification failed (" + std::to_string(diags.size()) +
          " diagnostic" + (diags.size() == 1 ? "" : "s") +
          "): " + diags.front().ToString());
      if (journal_ != nullptr) {
        for (const VerifierDiagnostic& d : diags) {
          journal_->Emit(LogLevel::kError, event_names::kVerifierDiagnostic,
                         {{"rule", d.rule}, {"detail", d.ToString()}});
        }
        journal_->Emit(LogLevel::kError, event_names::kRunFinish,
                       {{"status", RunStatusLabel(out.report.status)},
                        {"elapsed_seconds", "0"},
                        {"stages", "0"}});
      }
      out.report.verifier_diagnostics = std::move(diags);
      return out;
    }
  }

  // A table that failed compile-time verification carries no stages (the
  // verify block above surfaces its diagnostics); any other count mismatch
  // means the table and plan set drifted apart.
  if (table.stages.size() != plans.plans.size()) {
    out.report.status = Status::Internal(
        "compiled stage table has " + std::to_string(table.stages.size()) +
        " stage(s) for " + std::to_string(plans.plans.size()) + " plan(s)");
    if (journal_ != nullptr) {
      journal_->Emit(LogLevel::kError, event_names::kRunFinish,
                     {{"status", RunStatusLabel(out.report.status)},
                      {"elapsed_seconds", "0"},
                      {"stages", "0"}});
    }
    return out;
  }

  const SolverEnv solver_env = MakeSolverEnv();
  Simulator sim(options_.cluster);

  std::map<NodeId, DistributedMatrix> materialized;
  for (const auto& [id, m] : inputs) {
    FUSEME_CHECK_EQ(m.block_size(), options_.cluster.block_size)
        << "input block size must match the cluster configuration";
    materialized.emplace(
        id, DistributedMatrix::Create(m, PartitionScheme::kGrid,
                                      options_.cluster.total_tasks()));
  }

  Status status;
  const FaultInjector* injector =
      injector_.has_value() ? &*injector_ : nullptr;
  int stage_ordinal = -1;
  for (const PartialPlan& plan : plans.plans) {
    ++stage_ordinal;
    // Bind external inputs.
    FusedInputs fin;
    bool inputs_ok = true;
    for (NodeId ext : plan.ExternalInputs()) {
      const Node& n = dag.node(ext);
      if (!n.is_matrix()) continue;
      auto it = materialized.find(ext);
      if (it == materialized.end()) {
        if (options_.analytic) {
          BlockedMatrix meta = BlockedMatrix::MakeMeta(
              n.rows, n.cols, n.nnz, options_.cluster.block_size);
          it = materialized
                   .emplace(ext, DistributedMatrix::Create(
                                     std::move(meta), PartitionScheme::kGrid,
                                     options_.cluster.total_tasks()))
                   .first;
        } else {
          status = Status::InvalidArgument(
              "no matrix bound to leaf v" + std::to_string(ext) + " (" +
              n.name + ")");
          inputs_ok = false;
          break;
        }
      }
      fin[ext] = &it->second;
    }
    if (!inputs_ok) break;

    const CompiledStage& compiled = table.stages[stage_ordinal];
    OperatorKind kind = compiled.kind;
    const StageSolver* solver =
        SolverRegistry::Global().Find(compiled.solver_id);
    FUSEME_CHECK(solver != nullptr)
        << "compiled stage references unknown solver " << compiled.solver_id;
    bool first_attempt = true;

    StageTelemetry telemetry;
    const std::int64_t span_begin =
        options_.tracer ? options_.tracer->NowMicros() : 0;
    const auto host_begin = std::chrono::steady_clock::now();

    // Degradation ladder (DESIGN.md section 13): a stage that fails with
    // OutOfMemory — genuine or injected — retries under a degraded
    // configuration when recovery allows, instead of failing the run.
    StageRecovery recovery;
    bool oom_pending =
        injector != nullptr && injector->InjectOom(stage_ordinal);
    double budget_factor = 1.0;
    int rungs = 0;
    Result<DistributedMatrix> result = Status::Internal("unset");
    StageStats stats;
    std::string label;
    for (;;) {
      label = plan.ToString() + " [" +
              std::string(OperatorKindName(kind)) + "]";
      telemetry.label = label;
      telemetry.predicted = StagePrediction{};

      Result<StagePrediction> predr = Status::Internal("unset");
      if (first_attempt) {
        // First attempt: replay the compile-time base prediction and fold
        // in only what the live-bound inputs change — no cuboid search.
        // Identical to a fresh PredictStage at budget 1 by construction
        // (PredictBase + RefinePrediction == Predict).
        first_attempt = false;
        if (compiled.prediction_status.ok()) {
          StagePrediction pred = compiled.prediction;
          solver->RefinePrediction(solver_env, plan, &fin, &pred);
          predr = Result<StagePrediction>(std::move(pred));
        } else {
          predr = compiled.prediction_status;
        }
      } else {
        // Degradation rungs left the compiled configuration behind; fall
        // back to live prediction for the new kind/budget.
        predr = PredictStage(plan, kind, &fin, budget_factor);
      }
      if (predr.ok()) telemetry.predicted = *predr;

      result = predr.ok() ? Status::Internal("unset") : predr.status();
      bool cuboid_ok = true;
      if (predr.ok() && options_.verify == VerifyLevel::kParanoid &&
          (kind == OperatorKind::kCfo || kind == OperatorKind::kCpmm)) {
        // Re-check the chosen cuboid against the same grid bounds, k-split
        // restriction, and MemEst the optimizer selected under; a violation
        // here means the search or the estimate drifted from execution.
        std::vector<VerifierDiagnostic> cuboid_diags =
            verifier.VerifyCuboid(plan, predr->cuboid);
        if (!cuboid_diags.empty()) {
          cuboid_ok = false;
          result = Status::Internal("stage cuboid verification failed: " +
                                    cuboid_diags.front().ToString());
          out.report.verifier_diagnostics.insert(
              out.report.verifier_diagnostics.end(), cuboid_diags.begin(),
              cuboid_diags.end());
        }
      }
      stats = StageStats{};
      stats.label = label;
      if (predr.ok() && cuboid_ok) {
        if (oom_pending) {
          // Synthetic memory pressure: the schedule kills this stage's
          // first execution attempt before it runs.
          oom_pending = false;
          ++recovery.injected_oom;
          if (options_.metrics != nullptr) {
            options_.metrics
                ->GetCounter(metric_names::kFaultInjected, {{"kind", "oom"}})
                ->Increment();
          }
          result = Status::OutOfMemory(
              "injected OutOfMemory on stage " +
              std::to_string(stage_ordinal) + " (" + label + ")");
          if (journal_ != nullptr) {
            journal_->Emit(LogLevel::kWarning,
                           event_names::kFaultInjectedOom,
                           {{"stage", label},
                            {"ordinal", std::to_string(stage_ordinal)}});
          }
        } else {
          if (options_.metrics != nullptr) {
            options_.metrics
                ->GetCounter(metric_names::kSolverExecutions,
                             {{"solver", std::string(solver->id())}})
                ->Increment();
          }
          if (options_.analytic) {
            result = RunPlanAnalytic(plan, kind, *predr, &stats);
            telemetry.threads = 1;
          } else {
            StageContext ctx(label, options_.cluster);
            ctx.set_tracer(options_.tracer);
            ctx.set_metrics(options_.metrics);
            ctx.set_journal(journal_);
            if (injector != nullptr) {
              ctx.ConfigureRecovery(injector, stage_ordinal,
                                    options_.recovery.retry);
            }
            result = solver->Run(solver_env, plan, *predr, fin, &ctx);
            stats = ctx.Finalize();
            stats.label = label;
            telemetry.threads = ctx.Parallelism();
            telemetry.pipeline = ctx.pipeline();
            const StageRecovery items = ctx.recovery();
            recovery.attempts += items.attempts;
            recovery.retries += items.retries;
            recovery.injected_failures += items.injected_failures;
            recovery.exhausted_items += items.exhausted_items;
            recovery.backoff_seconds += items.backoff_seconds;
            if (journal_ != nullptr && items.retries > 0) {
              // One stage-level event after the attempt completes — never
              // per item, keeping emission off the work-item hot path.
              journal_->Emit(
                  LogLevel::kWarning, event_names::kTaskRetry,
                  {{"stage", label},
                   {"attempts", std::to_string(items.attempts)},
                   {"injected_failures",
                    std::to_string(items.injected_failures)},
                   {"exhausted", std::to_string(items.exhausted_items)}});
            }
          }
        }
      }
      if (result.ok() || !result.status().IsOutOfMemory() ||
          !options_.recovery.degrade_on_oom ||
          rungs >= options_.recovery.max_degradations_per_stage) {
        break;
      }
      Result<DegradationStep> next = NextDegradation(
          plan, kind, telemetry.predicted, &fin, budget_factor);
      if (!next.ok()) break;  // ladder exhausted: surface the original OOM
      ++rungs;
      ++recovery.degradations;
      DegradationEvent event;
      event.stage_label = label;
      event.from = std::string(OperatorKindName(kind)) +
                   (telemetry.predicted.present
                        ? " " + telemetry.predicted.cuboid.ToString()
                        : "");
      event.to = std::string(OperatorKindName(next->kind)) + " " +
                 next->pred.cuboid.ToString();
      event.cause = result.status().message();
      if (options_.metrics != nullptr) {
        options_.metrics
            ->GetCounter(metric_names::kStageDegradations,
                         {{"action", next->action}})
            ->Increment();
      }
      if (journal_ != nullptr) {
        journal_->Emit(LogLevel::kWarning, event_names::kStageDegraded,
                       {{"stage", label},
                        {"from", event.from},
                        {"to", event.to},
                        {"cause", event.cause}});
      }
      out.report.degradations.push_back(std::move(event));
      kind = next->kind;
      budget_factor = next->budget_factor;
      // The ladder switched configurations: re-resolve the solver for the
      // new kind (recorded as a fresh resolution, like compile time).
      solver = SolverRegistry::Global().Resolve(solver_env, kind, plan);
      FUSEME_CHECK(solver != nullptr);
    }
    telemetry.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      host_begin)
            .count();

    if (result.ok()) {
      if (injector != nullptr &&
          injector->spec().straggler_probability > 0.0) {
        // Enumerate the schedule's stragglers among this stage's tasks
        // (capped so paper-scale analytic task counts stay cheap; the
        // scan is deterministic either way).
        const std::int64_t scan =
            std::min<std::int64_t>(stats.num_tasks, kStragglerScanCap);
        for (std::int64_t t = 0; t < scan; ++t) {
          const double factor = injector->StragglerFactor(stage_ordinal, t);
          if (factor > 1.0) {
            ++recovery.stragglers;
            recovery.max_straggler_factor =
                std::max(recovery.max_straggler_factor, factor);
          }
        }
        if (options_.metrics != nullptr && recovery.stragglers > 0) {
          options_.metrics
              ->GetCounter(metric_names::kFaultInjected,
                           {{"kind", "straggler"}})
              ->Add(recovery.stragglers);
        }
      }
      StageFaultEffects effects;
      effects.retries = recovery.retries;
      effects.backoff_seconds = recovery.backoff_seconds;
      effects.stage_relaunches = recovery.degradations;
      effects.stragglers = recovery.stragglers;
      effects.straggler_factor = recovery.max_straggler_factor;
      effects.speculation = options_.recovery.speculative_execution;
      effects.speculation_launch_factor =
          options_.recovery.speculation_launch_factor;
      std::int64_t speculative = 0;
      status = sim.CompleteStage(stats, recovery.any() ? &effects : nullptr,
                                 &speculative);
      recovery.speculative_tasks = speculative;
      if (options_.metrics != nullptr && speculative > 0) {
        options_.metrics->GetCounter(metric_names::kSpeculativeTasks)
            ->Add(speculative);
      }
      if (journal_ != nullptr && speculative > 0) {
        journal_->Emit(LogLevel::kInfo, event_names::kSpeculation,
                       {{"stage", label},
                        {"copies", std::to_string(speculative)}});
      }
      if (status.ok() && !sim.stages().empty()) {
        stats.elapsed_seconds = sim.stages().back().elapsed_seconds;
        if (journal_ != nullptr) {
          // Stage-level commit event on the driver thread — the ordered
          // per-task commit path inside the operators never emits.
          journal_->Emit(
              LogLevel::kInfo, event_names::kStageCommit,
              {{"stage", label},
               {"ordinal", std::to_string(stage_ordinal)},
               {"operator", std::string(OperatorKindName(kind))},
               {"tasks", std::to_string(stats.num_tasks)},
               {"elapsed_seconds", std::to_string(stats.elapsed_seconds)}});
        }
      }
    } else {
      status = result.status();
    }
    telemetry.actual = stats;
    telemetry.recovery = recovery;
    out.report.attempts += recovery.attempts;
    if (recovery.retries > 0) {
      out.report.retries_by_cause["injected_failure"] += recovery.retries;
    }
    out.report.speculative_tasks += recovery.speculative_tasks;
    RecordStageMetrics(options_.metrics, stats, telemetry.wall_seconds,
                       telemetry.predicted);
    if (options_.metrics != nullptr &&
        (telemetry.pipeline.fetch_wait_seconds > 0.0 ||
         telemetry.pipeline.compute_busy_seconds > 0.0)) {
      // Overlap telemetry (DESIGN.md section 14): host wall-clock split of
      // work-item time into transfer stalls and kernel compute, plus the
      // per-stage overlap efficiency the prefetcher achieved.
      options_.metrics->GetGauge(metric_names::kFetchWaitSeconds)
          ->Add(telemetry.pipeline.fetch_wait_seconds);
      options_.metrics->GetGauge(metric_names::kComputeBusySeconds)
          ->Add(telemetry.pipeline.compute_busy_seconds);
      options_.metrics->GetGauge(metric_names::kStageOverlapEfficiency)
          ->Set(telemetry.pipeline.OverlapEfficiency());
    }

    if (options_.tracer != nullptr) {
      TraceSpan span;
      span.name = label;
      span.category = "stage";
      span.begin_us = span_begin;
      span.end_us = options_.tracer->NowMicros();
      span.tid = options_.tracer->CurrentThreadId();
      span.args.emplace_back("operator", OperatorKindName(kind));
      span.args.emplace_back("status", status.ok()
                                           ? std::string("ok")
                                           : result.ok()
                                                 ? status.ToString()
                                                 : result.status().ToString());
      if (telemetry.predicted.present) {
        span.args.emplace_back("cuboid", telemetry.predicted.cuboid.ToString());
        span.args.emplace_back(
            "predicted_net_bytes",
            std::to_string(static_cast<std::int64_t>(
                telemetry.predicted.net_bytes)));
        span.args.emplace_back(
            "predicted_flops",
            std::to_string(
                static_cast<std::int64_t>(telemetry.predicted.flops)));
      }
      span.args.emplace_back("actual_net_bytes",
                             std::to_string(stats.consolidation_bytes));
      span.args.emplace_back("actual_agg_bytes",
                             std::to_string(stats.aggregation_bytes));
      span.args.emplace_back("actual_flops", std::to_string(stats.flops));
      span.args.emplace_back("num_tasks", std::to_string(stats.num_tasks));
      if (recovery.any()) {
        span.args.emplace_back("retries", std::to_string(recovery.retries));
        span.args.emplace_back("degradations",
                               std::to_string(recovery.degradations));
        span.args.emplace_back("injected_oom",
                               std::to_string(recovery.injected_oom));
        span.args.emplace_back("stragglers",
                               std::to_string(recovery.stragglers));
        span.args.emplace_back("speculative_tasks",
                               std::to_string(recovery.speculative_tasks));
      }
      options_.tracer->Record(std::move(span));
    }

    out.report.telemetry.push_back(std::move(telemetry));
    if (!result.ok()) break;
    materialized.emplace(plan.root(), std::move(*result));
    if (!status.ok()) break;  // timed out
  }

  out.report.status = status;
  out.report.elapsed_seconds = sim.elapsed_seconds();
  out.report.stages = sim.stages();
  for (const StageStats& s : out.report.stages) {
    out.report.consolidation_bytes += s.consolidation_bytes;
    out.report.aggregation_bytes += s.aggregation_bytes;
    out.report.flops += s.flops;
    out.report.max_task_memory =
        std::max(out.report.max_task_memory, s.max_task_memory);
  }
  if (status.ok()) {
    for (NodeId output : dag.outputs()) {
      auto it = materialized.find(output);
      if (it != materialized.end()) {
        out.outputs.emplace(output, std::move(it->second));
      }
    }
  }
  if (options_.metrics != nullptr) {
    options_.metrics
        ->GetCounter(metric_names::kEngineRuns,
                     {{"status", RunStatusLabel(out.report.status)}})
        ->Increment();
  }
  if (journal_ != nullptr) {
    journal_->Emit(
        out.report.status.ok() ? LogLevel::kInfo : LogLevel::kError,
        event_names::kRunFinish,
        {{"status", RunStatusLabel(out.report.status)},
         {"elapsed_seconds", std::to_string(out.report.elapsed_seconds)},
         {"stages", std::to_string(out.report.stages.size())}});
  }
  return out;
}

namespace {

/// The plan's matrix-valued external input ids, ascending — the id set a
/// successful run binds, in the order the historical std::map-keyed
/// PickOperator iterated them.
std::vector<NodeId> BoundMatrixIds(const Dag& dag, const PartialPlan& plan) {
  std::vector<NodeId> bound;
  for (NodeId ext : plan.ExternalInputs()) {
    if (dag.node(ext).is_matrix()) bound.push_back(ext);
  }
  std::sort(bound.begin(), bound.end());
  return bound;
}

}  // namespace

CompiledStageTable Engine::CompileStages(const Dag& dag,
                                         const FusionPlanSet& plans,
                                         OperatorKind forced) const {
  CompiledStageTable table;
  // Both entry points populate the description: MakePlans-produced sets
  // carry the planner's own, caller-assembled sets get a synthesized one.
  table.description =
      !plans.description.empty()
          ? plans.description
          : "caller-supplied (" + std::to_string(plans.plans.size()) +
                " plan" + (plans.plans.size() == 1 ? "" : "s") + ")";
  table.diagnostics = plans.diagnostics;
  if (options_.verify != VerifyLevel::kOff) {
    // Structural verification of everything the table will replay: planner
    // diagnostics carried in the set, DAG consistency, per-plan region
    // legality + subspace soundness, and the lowered stage graph.  The
    // result is cached in the table so Execute can replay it.
    PlanVerifier verifier(&model_);
    verifier.set_metrics(options_.metrics);
    std::vector<VerifierDiagnostic> more =
        verifier.Verify(dag, plans, options_.verify);
    table.diagnostics.insert(table.diagnostics.end(), more.begin(),
                             more.end());
    table.verified = true;
    if (!table.diagnostics.empty()) {
      // Execute fails on these diagnostics before touching any stage;
      // resolving solvers for a rejected plan set would only mint
      // misleading fuseme.solver.chosen events on corrupt plans.
      return table;
    }
  }

  const SolverEnv env = MakeSolverEnv();
  table.stages.reserve(plans.plans.size());
  for (const PartialPlan& plan : plans.plans) {
    CompiledStage stage;
    stage.kind = forced == OperatorKind::kAuto
                     ? PickOperator(plan, BoundMatrixIds(dag, plan))
                     : forced;
    const StageSolver* solver =
        SolverRegistry::Global().Resolve(env, stage.kind, plan);
    FUSEME_CHECK(solver != nullptr);
    stage.solver_id = std::string(solver->id());
    stage.refine_cell =
        stage.kind == OperatorKind::kCfo && plan.MatMuls().empty();
    Result<StagePrediction> base = solver->PredictBase(env, plan, 1.0);
    if (base.ok()) {
      stage.prediction = *std::move(base);
    } else {
      stage.prediction_status = base.status();
    }
    if (journal_ != nullptr) {
      std::vector<std::pair<std::string, std::string>> fields = {
          {"stage", plan.ToString()},
          {"solver", stage.solver_id},
          {"operator", std::string(OperatorKindName(stage.kind))}};
      if (stage.prediction_status.ok()) {
        fields.emplace_back("cost_seconds",
                            std::to_string(stage.prediction.cost_seconds));
      }
      journal_->Emit(LogLevel::kInfo, event_names::kSolverChosen,
                     std::move(fields));
    }
    table.stages.push_back(std::move(stage));
  }
  return table;
}

Result<CompiledPlan> Engine::Compile(const Dag& dag) const {
  CompiledPlan compiled;
  compiled.dag_ = std::make_unique<Dag>(dag);
  compiled.plans_ = MakePlans(*compiled.dag_);
  compiled.table_ =
      CompileStages(*compiled.dag_, compiled.plans_, OperatorKind::kAuto);
  compiled.system_ = options_.system;
  compiled.forced_ = OperatorKind::kAuto;
  compiled.analytic_ = options_.analytic;
  compiled.verify_ = options_.verify;
  compiled.cluster_ = options_.cluster;
  return compiled;
}

Result<CompiledPlan> Engine::CompileWithPlans(const Dag& dag,
                                              const FusionPlanSet& plans,
                                              OperatorKind forced) const {
  CompiledPlan compiled;
  compiled.dag_ = std::make_unique<Dag>(dag);
  // Rebuild the caller's plans over the artifact's own DAG copy so the
  // artifact stays self-contained.  The PartialPlan constructor aborts on
  // malformed plans; pre-validate so callers get a Status instead.
  compiled.plans_.description = plans.description;
  compiled.plans_.diagnostics = plans.diagnostics;
  int index = -1;
  for (const PartialPlan& plan : plans.plans) {
    ++index;
    const auto malformed = [&](const std::string& why) {
      return Status::InvalidArgument("plan #" + std::to_string(index) + " " +
                                     why);
    };
    if (plan.members().empty()) return malformed("has no members");
    for (NodeId member : plan.members()) {
      if (member < 0 || member >= dag.num_nodes()) {
        return malformed("member v" + std::to_string(member) +
                         " is out of range");
      }
      const Node& n = dag.node(member);
      if (n.kind == OpKind::kInput || n.kind == OpKind::kScalar) {
        return malformed("member v" + std::to_string(member) +
                         " is a leaf, not an operator");
      }
    }
    if (!plan.Contains(plan.root())) {
      return malformed("root v" + std::to_string(plan.root()) +
                       " is not a member");
    }
    compiled.plans_.plans.emplace_back(compiled.dag_.get(), plan.members(),
                                       plan.root());
  }
  compiled.table_ = CompileStages(*compiled.dag_, compiled.plans_, forced);
  compiled.system_ = options_.system;
  compiled.forced_ = forced;
  compiled.analytic_ = options_.analytic;
  compiled.verify_ = options_.verify;
  compiled.cluster_ = options_.cluster;
  return compiled;
}

Engine::RunResult Engine::Execute(
    const CompiledPlan& plan,
    const std::map<NodeId, BlockedMatrix>& inputs) const {
  const Status compat = plan.CheckCompatible(options_, inputs);
  if (!compat.ok()) {
    RunResult out;
    out.report.plan_description = plan.description();
    out.report.status = compat;
    return out;
  }
  return ExecuteCompiled(plan.dag(), plan.plans(), plan.table(), inputs,
                         /*trust_cached_verification=*/false);
}

PlanDescription Engine::Describe(const Dag& dag) const {
  const FusionPlanSet plans = MakePlans(dag);
  // Silent env: describing must not inflate the fuseme_solver_* /
  // optimizer accounting a later Compile of the same DAG would record.
  const SolverEnv env = MakeSolverEnv(/*silent=*/true);
  const SolverRegistry& registry = SolverRegistry::Global();
  PlanDescription desc;
  desc.planner = plans.description;
  desc.stages.reserve(plans.plans.size());
  for (const PartialPlan& plan : plans.plans) {
    StageDescription stage;
    stage.label = plan.ToString();
    stage.kind = PickOperator(plan, BoundMatrixIds(dag, plan));
    const StageSolver* chosen = registry.Resolve(env, stage.kind, plan);
    for (const StageSolver* s : registry.solvers()) {
      SolverCandidate c;
      c.solver_id = std::string(s->id());
      c.applicability = s->IsApplicable(env, plan);
      if (c.applicability.ok()) {
        c.cost_seconds = s->Cost(env, plan);
        c.feasible = std::isfinite(c.cost_seconds);
      }
      c.chosen = s == chosen;
      stage.candidates.push_back(std::move(c));
    }
    desc.stages.push_back(std::move(stage));
  }
  return desc;
}

Engine::RunResult Engine::RunWithPlans(
    const Dag& dag, const FusionPlanSet& plans,
    const std::map<NodeId, BlockedMatrix>& inputs, OperatorKind forced) const {
  // Compile-then-execute over the caller's dag/plan set in place.  The
  // table carries the single Verify pass this call just ran, so trusting
  // it keeps the historical one-verification-per-call behavior exactly.
  const CompiledStageTable table = CompileStages(dag, plans, forced);
  return ExecuteCompiled(dag, plans, table, inputs,
                         /*trust_cached_verification=*/true);
}

Engine::RunResult Engine::Run(
    const Dag& dag, const std::map<NodeId, BlockedMatrix>& inputs) const {
  return RunWithPlans(dag, MakePlans(dag), inputs, OperatorKind::kAuto);
}

}  // namespace fuseme
