// First declaration of the duplicated rule id.
#ifndef FIXTURE_RULE_DUP_A_H_
#define FIXTURE_RULE_DUP_A_H_

namespace fuseme::rules {

inline constexpr char kOriginal[] = "fixture-duplicated-id";

}  // namespace fuseme::rules

#endif  // FIXTURE_RULE_DUP_A_H_
