file(REMOVE_RECURSE
  "libfuseme_workloads.a"
)
