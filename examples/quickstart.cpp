// Quickstart: build a matrix query, run it on the FuseME engine, and read
// the execution report.
//
//   $ ./build/examples/quickstart
//
// The query is the paper's running example, O = X * log(U × Vᵀ + eps),
// with a sparse X — the pattern where cuboid-based fusion shines.

#include <cstdio>

#include "common/string_util.h"
#include "engine/engine.h"
#include "engine/reference.h"
#include "ir/expr.h"
#include "ir/printer.h"
#include "matrix/generators.h"

using namespace fuseme;  // NOLINT — example brevity

int main() {
  // --- 1. Describe the query as an expression DAG. -----------------------
  const std::int64_t n = 96, k = 16, block = 16;
  Dag dag;
  Expr X = Expr::Input(&dag, "X", n, n, /*nnz=*/n * n / 10);
  Expr U = Expr::Input(&dag, "U", n, k);
  Expr V = Expr::Input(&dag, "V", n, k);
  Expr O = (X * Log(MatMul(U, T(V)) + 1e-8)).MarkOutput();

  std::printf("Query: %s\n\nDAG:\n%s\n", ExprToString(dag, O.id()).c_str(),
              DagToString(dag).c_str());

  // --- 2. Bind input data. ----------------------------------------------
  SparseMatrix x = RandomSparse(n, n, 0.1, /*seed=*/1, 1.0, 5.0);
  DenseMatrix u = RandomDense(n, k, /*seed=*/2, 0.5, 1.5);
  DenseMatrix v = RandomDense(n, k, /*seed=*/3, 0.5, 1.5);
  std::map<NodeId, BlockedMatrix> inputs;
  inputs[X.id()] = BlockedMatrix::FromSparse(x, block);
  inputs[U.id()] = BlockedMatrix::FromDense(u, block);
  inputs[V.id()] = BlockedMatrix::FromDense(v, block);

  // --- 3. Configure a modeled cluster and run. ---------------------------
  EngineOptions options;
  options.system = SystemMode::kFuseMe;
  options.cluster.num_nodes = 4;
  options.cluster.tasks_per_node = 4;
  options.cluster.block_size = block;
  Engine engine(options);

  Engine::RunResult run = engine.Run(dag, inputs);
  if (!run.report.ok()) {
    std::printf("execution failed: %s\n", run.report.Summary().c_str());
    return 1;
  }

  // --- 4. Inspect the result and the report. -----------------------------
  DenseMatrix result = run.outputs.at(O.id()).blocks().ToDense();
  DenseMatrix expected = *ReferenceEval(
      dag, O.id(), {{X.id(), x.ToDense()}, {U.id(), u}, {V.id(), v}});
  std::printf("max |distributed - single-node| = %.3g\n",
              DenseMatrix::MaxAbsDiff(result, expected));

  std::printf("\nExecution report (%s):\n", run.report.Summary().c_str());
  for (const StageStats& stage : run.report.stages) {
    std::printf("  %-48s %4d tasks  %10s moved  %12lld flops\n",
                stage.label.c_str(), stage.num_tasks,
                HumanBytes(static_cast<double>(stage.total_bytes())).c_str(),
                static_cast<long long>(stage.flops));
  }
  return 0;
}
