#include "matrix/block_ops.h"

#include <algorithm>
#include <tuple>
#include <vector>

#include "common/thread_pool.h"
#include "matrix/sparse_kernels.h"
#include "matrix/sparsity.h"

namespace fuseme {

namespace {

void AddFlops(std::int64_t* flops, std::int64_t amount) {
  if (flops != nullptr) *flops += amount;
}

// Cache-blocked dense GEMM panel sizes: 64-row slabs of A/C against
// 256×256 panels of B, so the active B panel (512 KB) stays L2-resident
// and each C row segment fits in L1 while k streams through it.
constexpr std::int64_t kGemmRowTile = 64;
constexpr std::int64_t kGemmKTile = 256;
constexpr std::int64_t kGemmColTile = 256;
// Below this many FLOPs the fork/join overhead beats the parallel gain.
constexpr std::int64_t kGemmParallelFlops = 1 << 23;

/// acc[i0:i1) += a[i0:i1) · b, tiled over k and j.  Per output element the
/// k contributions accumulate in ascending order — the same order as the
/// naive i/k/j loop — so results are bitwise-identical to the untiled
/// kernel regardless of tile sizes or row-range splits.
void GemmRowRange(DenseMatrix* acc, const DenseMatrix& da,
                  const DenseMatrix& db, std::int64_t i_begin,
                  std::int64_t i_end) {
  const std::int64_t k = da.cols(), n = db.cols();
  for (std::int64_t k0 = 0; k0 < k; k0 += kGemmKTile) {
    const std::int64_t k1 = std::min(k, k0 + kGemmKTile);
    for (std::int64_t j0 = 0; j0 < n; j0 += kGemmColTile) {
      const std::int64_t j1 = std::min(n, j0 + kGemmColTile);
      for (std::int64_t i = i_begin; i < i_end; ++i) {
        double* out_row = acc->row(i);
        const double* a_row = da.row(i);
        for (std::int64_t kk = k0; kk < k1; ++kk) {
          const double va = a_row[kk];
          if (va == 0.0) continue;
          const double* b_row = db.row(kk);
          for (std::int64_t j = j0; j < j1; ++j) out_row[j] += va * b_row[j];
        }
      }
    }
  }
}

/// Picks the storage format for a freshly computed dense result.
Block NormalizeDense(DenseMatrix m) {
  Block as_dense = Block::FromDense(std::move(m));
  if (as_dense.nnz() == 0) {
    return Block::Zero(as_dense.rows(), as_dense.cols());
  }
  if (as_dense.density() < kDenseStorageThreshold) {
    return Block::FromSparse(SparseMatrix::FromDense(as_dense.dense()));
  }
  return as_dense;
}

/// Picks the storage format for a freshly computed sparse result.
Block NormalizeSparse(SparseMatrix m) {
  if (m.nnz() == 0) return Block::Zero(m.rows(), m.cols());
  if (m.density() >= kDenseStorageThreshold) {
    return Block::FromDense(m.ToDense());
  }
  return Block::FromSparse(std::move(m));
}

Status CheckSameShape(const Block& a, const Block& b, const char* op) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return Status::InvalidArgument(
        std::string(op) + ": shape mismatch " + a.ToString() + " vs " +
        b.ToString());
  }
  return Status::OK();
}

}  // namespace

Result<Block> EwiseBinary(BinaryFn fn, const Block& a, const Block& b,
                          std::int64_t* flops) {
  FUSEME_RETURN_IF_ERROR(CheckSameShape(a, b, "EwiseBinary"));
  const std::int64_t cells = a.size();

  if (a.is_meta() || b.is_meta()) {
    std::int64_t out_nnz =
        EstimateEwiseBinaryNnz(fn, a.rows(), a.cols(), a.nnz(), b.nnz());
    if (fn == BinaryFn::kMul) {
      AddFlops(flops, std::min(a.nnz(), b.nnz()));
    } else if (fn == BinaryFn::kAdd || fn == BinaryFn::kSub) {
      AddFlops(flops, std::min(cells, a.nnz() + b.nnz()));
    } else {
      AddFlops(flops, cells);
    }
    return Block::Meta(a.rows(), a.cols(), out_nnz);
  }

  if (fn == BinaryFn::kMul) {
    if (a.is_zero() || b.is_zero()) return Block::Zero(a.rows(), a.cols());
    // Sparse side drives the iteration: only intersecting positions matter.
    const bool a_sparse = a.kind() == Block::Kind::kSparse;
    const bool b_sparse = b.kind() == Block::Kind::kSparse;
    if (a_sparse && b_sparse) {
      // Per-row sorted merge-join: O(nnz(a) + nnz(b)) instead of a binary
      // search per entry.  Charge matches the meta estimator's bound.
      std::int64_t merge_flops = 0;
      SparseMatrix out = EwiseMulMergeJoin(a.sparse(), b.sparse(), &merge_flops);
      AddFlops(flops, merge_flops);
      return NormalizeSparse(std::move(out));
    }
    if (a_sparse || b_sparse) {
      const Block& s = a_sparse ? a : b;
      const Block& d = a_sparse ? b : a;
      std::vector<std::tuple<std::int64_t, std::int64_t, double>> triplets;
      triplets.reserve(s.nnz());
      s.sparse().ForEach([&](std::int64_t i, std::int64_t j, double v) {
        double other = d.At(i, j);  // dense lookup: O(1)
        double out = a_sparse ? ApplyBinary(fn, v, other)
                              : ApplyBinary(fn, other, v);
        if (out != 0.0) triplets.emplace_back(i, j, out);
      });
      AddFlops(flops, s.nnz());
      return NormalizeSparse(
          SparseMatrix::FromTriplets(a.rows(), a.cols(), std::move(triplets)));
    }
    // Dense · dense.
    DenseMatrix out(a.rows(), a.cols());
    const DenseMatrix& da = a.dense();
    const DenseMatrix& db = b.dense();
    for (std::int64_t i = 0; i < cells; ++i) {
      out.data()[i] = da.data()[i] * db.data()[i];
    }
    AddFlops(flops, cells);
    return NormalizeDense(std::move(out));
  }

  if (fn == BinaryFn::kAdd || fn == BinaryFn::kSub) {
    if (b.is_zero()) {
      AddFlops(flops, 0);
      return a;
    }
    if (a.is_zero()) {
      AddFlops(flops, fn == BinaryFn::kSub ? b.nnz() : 0);
      return fn == BinaryFn::kAdd ? Result<Block>(b)
                                  : Unary(UnaryFn::kNeg, b, flops);
    }
    if (a.kind() == Block::Kind::kSparse &&
        b.kind() == Block::Kind::kSparse) {
      std::vector<std::tuple<std::int64_t, std::int64_t, double>> triplets;
      triplets.reserve(a.nnz() + b.nnz());
      a.sparse().ForEach([&](std::int64_t i, std::int64_t j, double v) {
        triplets.emplace_back(i, j, v);
      });
      const double sign = fn == BinaryFn::kSub ? -1.0 : 1.0;
      b.sparse().ForEach([&](std::int64_t i, std::int64_t j, double v) {
        triplets.emplace_back(i, j, sign * v);
      });
      AddFlops(flops, a.nnz() + b.nnz());
      return NormalizeSparse(
          SparseMatrix::FromTriplets(a.rows(), a.cols(), std::move(triplets)));
    }
    // At least one dense operand: dense loop.
    DenseMatrix da = a.ToDense();
    DenseMatrix db = b.ToDense();
    DenseMatrix out(a.rows(), a.cols());
    for (std::int64_t i = 0; i < cells; ++i) {
      out.data()[i] = fn == BinaryFn::kAdd ? da.data()[i] + db.data()[i]
                                           : da.data()[i] - db.data()[i];
    }
    AddFlops(flops, cells);
    return NormalizeDense(std::move(out));
  }

  // General path (div, pow, min, max, comparisons): element-by-element with
  // full zero semantics (0/0 really is NaN).
  DenseMatrix da = a.ToDense();
  DenseMatrix db = b.ToDense();
  DenseMatrix out(a.rows(), a.cols());
  for (std::int64_t i = 0; i < cells; ++i) {
    out.data()[i] = ApplyBinary(fn, da.data()[i], db.data()[i]);
  }
  AddFlops(flops, cells);
  return NormalizeDense(std::move(out));
}

Result<Block> EwiseScalar(BinaryFn fn, const Block& a, double scalar,
                          bool scalar_left, std::int64_t* flops) {
  const std::int64_t cells = a.size();
  const double zero_maps_to = scalar_left ? ApplyBinary(fn, scalar, 0.0)
                                          : ApplyBinary(fn, 0.0, scalar);
  const bool preserves_zero = zero_maps_to == 0.0;

  if (a.is_meta()) {
    AddFlops(flops, preserves_zero ? a.nnz() : cells);
    return Block::Meta(
        a.rows(), a.cols(),
        EstimateEwiseScalarNnz(fn, a.rows(), a.cols(), a.nnz(), scalar,
                               scalar_left));
  }
  if (a.is_zero()) {
    AddFlops(flops, preserves_zero ? 0 : cells);
    return Block::Constant(a.rows(), a.cols(), zero_maps_to);
  }
  if (a.kind() == Block::Kind::kSparse && preserves_zero) {
    std::vector<std::tuple<std::int64_t, std::int64_t, double>> triplets;
    triplets.reserve(a.nnz());
    a.sparse().ForEach([&](std::int64_t i, std::int64_t j, double v) {
      double out =
          scalar_left ? ApplyBinary(fn, scalar, v) : ApplyBinary(fn, v, scalar);
      if (out != 0.0) triplets.emplace_back(i, j, out);
    });
    AddFlops(flops, a.nnz());
    return NormalizeSparse(
        SparseMatrix::FromTriplets(a.rows(), a.cols(), std::move(triplets)));
  }
  DenseMatrix da = a.ToDense();
  DenseMatrix out(a.rows(), a.cols());
  for (std::int64_t i = 0; i < cells; ++i) {
    out.data()[i] = scalar_left ? ApplyBinary(fn, scalar, da.data()[i])
                                : ApplyBinary(fn, da.data()[i], scalar);
  }
  AddFlops(flops, cells);
  return NormalizeDense(std::move(out));
}

Result<Block> Unary(UnaryFn fn, const Block& a, std::int64_t* flops) {
  const std::int64_t cells = a.size();
  const bool preserves_zero = UnaryPreservesZero(fn);

  if (a.is_meta()) {
    AddFlops(flops, preserves_zero ? a.nnz() : cells);
    return Block::Meta(a.rows(), a.cols(),
                       EstimateUnaryNnz(fn, a.rows(), a.cols(), a.nnz()));
  }
  if (a.is_zero()) {
    AddFlops(flops, preserves_zero ? 0 : cells);
    return Block::Constant(a.rows(), a.cols(), ApplyUnary(fn, 0.0));
  }
  if (a.kind() == Block::Kind::kSparse && preserves_zero) {
    std::vector<std::tuple<std::int64_t, std::int64_t, double>> triplets;
    triplets.reserve(a.nnz());
    a.sparse().ForEach([&](std::int64_t i, std::int64_t j, double v) {
      double out = ApplyUnary(fn, v);
      if (out != 0.0) triplets.emplace_back(i, j, out);
    });
    AddFlops(flops, a.nnz());
    return NormalizeSparse(
        SparseMatrix::FromTriplets(a.rows(), a.cols(), std::move(triplets)));
  }
  DenseMatrix da = a.ToDense();
  DenseMatrix out(a.rows(), a.cols());
  for (std::int64_t i = 0; i < cells; ++i) {
    out.data()[i] = ApplyUnary(fn, da.data()[i]);
  }
  AddFlops(flops, cells);
  return NormalizeDense(std::move(out));
}

Status MatMulAcc(DenseMatrix* acc, const Block& a, const Block& b,
                 std::int64_t* flops) {
  if (a.cols() != b.rows()) {
    return Status::InvalidArgument("MatMulAcc: inner dimension mismatch " +
                                   a.ToString() + " x " + b.ToString());
  }
  FUSEME_CHECK_EQ(acc->rows(), a.rows());
  FUSEME_CHECK_EQ(acc->cols(), b.cols());
  if (a.is_meta() || b.is_meta()) {
    return Status::InvalidArgument(
        "MatMulAcc requires real blocks, got " + a.ToString() + " x " +
        b.ToString() + " (meta blocks carry no values to accumulate)");
  }
  if (a.is_zero() || b.is_zero()) return Status::OK();

  const std::int64_t m = a.rows(), k = a.cols(), n = b.cols();
  const bool a_sparse = a.kind() == Block::Kind::kSparse;
  const bool b_sparse = b.kind() == Block::Kind::kSparse;

  // The sparse paths live in sparse_kernels.cc: CSR-direct row-slab
  // kernels sharing the dense GEMM's parallel-guard shape (disjoint output
  // rows on the global pool above a flop threshold, serial per-element
  // accumulation order preserved → bitwise-identical at any thread count).
  if (a_sparse) {
    if (b_sparse) {
      SpmmAccSparseSparse(acc, a.sparse(), b.sparse(), flops);
    } else {
      SpmmAccSparseDense(acc, a.sparse(), b.dense(), flops);
    }
    return Status::OK();
  }
  if (b_sparse) {
    // i-outer row-streaming loop (contiguous reads of a's row, forward
    // sweeps over b's CSR); per output element the k contributions still
    // accumulate in ascending order, matching the old k-outer loop bitwise.
    SpmmAccDenseSparse(acc, a.dense(), b.sparse(), flops);
    return Status::OK();
  }
  // Dense × dense: cache-blocked i/k/j kernel.  Row slabs are independent
  // (each writes its own rows of acc), so large products split over the
  // global pool; a call issued from inside a pool worker — i.e. from a
  // parallel distributed operator — runs inline, keeping exactly one level
  // of parallelism.
  const DenseMatrix& da = a.dense();
  const DenseMatrix& db = b.dense();
  const std::int64_t slabs = (m + kGemmRowTile - 1) / kGemmRowTile;
  const std::int64_t total_flops = 2 * m * k * n;
  if (slabs > 1 && total_flops >= kGemmParallelFlops &&
      GlobalParallelism() > 1) {
    GlobalThreadPool()->ParallelFor(0, slabs, [&](std::int64_t slab) {
      const std::int64_t i_begin = slab * kGemmRowTile;
      GemmRowRange(acc, da, db, i_begin,
                   std::min(m, i_begin + kGemmRowTile));
    });
  } else {
    GemmRowRange(acc, da, db, 0, m);
  }
  AddFlops(flops, total_flops);
  return Status::OK();
}

Result<Block> MatMul(const Block& a, const Block& b, std::int64_t* flops) {
  if (a.cols() != b.rows()) {
    return Status::InvalidArgument("MatMul: inner dimension mismatch " +
                                   a.ToString() + " x " + b.ToString());
  }
  if (a.is_meta() || b.is_meta()) {
    AddFlops(flops, EstimateMatMulFlops(a.rows(), a.cols(), b.cols(), a.nnz(),
                                        b.nnz()));
    return Block::Meta(
        a.rows(), b.cols(),
        EstimateMatMulNnz(a.rows(), a.cols(), b.cols(), a.nnz(), b.nnz()));
  }
  if (a.is_zero() || b.is_zero()) return Block::Zero(a.rows(), b.cols());
  DenseMatrix acc(a.rows(), b.cols());
  FUSEME_RETURN_IF_ERROR(MatMulAcc(&acc, a, b, flops));
  return NormalizeDense(std::move(acc));
}

Result<Block> Transpose(const Block& a, std::int64_t* flops) {
  switch (a.kind()) {
    case Block::Kind::kMeta:
      AddFlops(flops, a.nnz());
      return Block::Meta(a.cols(), a.rows(), a.nnz());
    case Block::Kind::kZero:
      return Block::Zero(a.cols(), a.rows());
    case Block::Kind::kDense:
      AddFlops(flops, a.size());
      return Block::FromDense(a.dense().Transposed());
    case Block::Kind::kSparse:
      AddFlops(flops, a.nnz());
      return Block::FromSparse(a.sparse().Transposed());
  }
  return Status::Internal("Transpose: unknown block kind");
}

namespace {

/// Shared reduction core: reduces `a` along rows, cols, or everything.
enum class ReduceAxis { kAll, kRow, kCol };

Result<Block> Reduce(AggFn fn, ReduceAxis axis, const Block& a,
                     std::int64_t* flops) {
  const std::int64_t out_rows = axis == ReduceAxis::kCol ? 1 : a.rows();
  const std::int64_t out_cols = axis == ReduceAxis::kRow ? 1 : a.cols();
  const std::int64_t final_rows = axis == ReduceAxis::kAll ? 1 : out_rows;
  const std::int64_t final_cols = axis == ReduceAxis::kAll ? 1 : out_cols;

  if (a.is_meta()) {
    AddFlops(flops, std::max<std::int64_t>(a.nnz(), 1));
    // Aggregates are effectively dense vectors/scalars.
    return Block::Meta(final_rows, final_cols, final_rows * final_cols);
  }
  if (a.is_zero() && fn == AggFn::kSum) {
    return Block::Zero(final_rows, final_cols);
  }

  // kSum over sparse can skip zeros; min/max must observe implicit zeros,
  // so go through the dense view (blocks are small by construction).
  if (fn == AggFn::kSum && a.kind() == Block::Kind::kSparse) {
    DenseMatrix out(final_rows, final_cols);
    a.sparse().ForEach([&](std::int64_t i, std::int64_t j, double v) {
      switch (axis) {
        case ReduceAxis::kAll:
          out(0, 0) += v;
          break;
        case ReduceAxis::kRow:
          out(i, 0) += v;
          break;
        case ReduceAxis::kCol:
          out(0, j) += v;
          break;
      }
    });
    AddFlops(flops, a.nnz());
    return NormalizeDense(std::move(out));
  }

  DenseMatrix da = a.ToDense();
  DenseMatrix out(final_rows, final_cols);
  auto fold = [fn](double acc, double v) {
    switch (fn) {
      case AggFn::kSum:
        return acc + v;
      case AggFn::kMin:
        return std::min(acc, v);
      case AggFn::kMax:
        return std::max(acc, v);
    }
    return acc;
  };
  const double init = fn == AggFn::kSum ? 0.0 : da(0, 0);
  out.Fill(init);
  if (fn != AggFn::kSum) {
    // Seed row/col reductions with the first element of each slice.
    if (axis == ReduceAxis::kRow) {
      for (std::int64_t i = 0; i < a.rows(); ++i) out(i, 0) = da(i, 0);
    } else if (axis == ReduceAxis::kCol) {
      for (std::int64_t j = 0; j < a.cols(); ++j) out(0, j) = da(0, j);
    }
  }
  for (std::int64_t i = 0; i < a.rows(); ++i) {
    for (std::int64_t j = 0; j < a.cols(); ++j) {
      const double v = da(i, j);
      switch (axis) {
        case ReduceAxis::kAll:
          out(0, 0) = (i == 0 && j == 0 && fn != AggFn::kSum)
                          ? v
                          : fold(out(0, 0), v);
          break;
        case ReduceAxis::kRow:
          out(i, 0) = (j == 0 && fn != AggFn::kSum) ? v : fold(out(i, 0), v);
          break;
        case ReduceAxis::kCol:
          out(0, j) = (i == 0 && fn != AggFn::kSum) ? v : fold(out(0, j), v);
          break;
      }
    }
  }
  AddFlops(flops, a.size());
  return NormalizeDense(std::move(out));
}

}  // namespace

Result<Block> FullAgg(AggFn fn, const Block& a, std::int64_t* flops) {
  return Reduce(fn, ReduceAxis::kAll, a, flops);
}

Result<Block> RowAgg(AggFn fn, const Block& a, std::int64_t* flops) {
  return Reduce(fn, ReduceAxis::kRow, a, flops);
}

Result<Block> ColAgg(AggFn fn, const Block& a, std::int64_t* flops) {
  return Reduce(fn, ReduceAxis::kCol, a, flops);
}

Result<Block> MergeAgg(AggFn fn, const Block& a, const Block& b,
                       std::int64_t* flops) {
  switch (fn) {
    case AggFn::kSum:
      return EwiseBinary(BinaryFn::kAdd, a, b, flops);
    case AggFn::kMin:
      return EwiseBinary(BinaryFn::kMin, a, b, flops);
    case AggFn::kMax:
      return EwiseBinary(BinaryFn::kMax, a, b, flops);
  }
  return Status::Internal("MergeAgg: unknown AggFn");
}

}  // namespace fuseme
