// Asynchronous block prefetching must be invisible (DESIGN.md section 14):
// for every prefetch_depth — 0 (synchronous legacy), 1, 2 (double
// buffering), 8 (deep) — real-mode runs produce bitwise-identical outputs,
// StageStats, and recovery counters at any thread count, including under
// injected task-failure schedules that kill attempts with prefetches still
// in flight.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/thread_pool.h"
#include "engine/compiled_plan.h"
#include "engine/engine.h"
#include "matrix/generators.h"
#include "workloads/queries.h"

namespace fuseme {
namespace {

constexpr std::int64_t kBs = 8;

EngineOptions Options(int local_threads, int prefetch_depth) {
  EngineOptions options;
  options.cluster.num_nodes = 2;
  options.cluster.tasks_per_node = 3;
  options.cluster.block_size = kBs;
  options.cluster.task_memory_budget = 1LL << 40;
  options.cluster.local_threads = local_threads;
  options.cluster.prefetch_depth = prefetch_depth;
  return options;
}

void ExpectIdenticalRuns(const Engine::RunResult& base,
                         const Engine::RunResult& other) {
  ASSERT_TRUE(base.report.ok()) << base.report.status;
  ASSERT_TRUE(other.report.ok()) << other.report.status;

  ASSERT_EQ(base.outputs.size(), other.outputs.size());
  for (const auto& [id, dm] : base.outputs) {
    auto it = other.outputs.find(id);
    ASSERT_NE(it, other.outputs.end());
    EXPECT_EQ(DenseMatrix::MaxAbsDiff(dm.blocks().ToDense(),
                                      it->second.blocks().ToDense()),
              0.0)
        << "output v" << id;
  }

  const ExecutionReport& a = base.report;
  const ExecutionReport& b = other.report;
  ASSERT_EQ(a.stages.size(), b.stages.size());
  for (std::size_t s = 0; s < a.stages.size(); ++s) {
    SCOPED_TRACE("stage " + a.stages[s].label);
    EXPECT_EQ(a.stages[s].label, b.stages[s].label);
    EXPECT_EQ(a.stages[s].num_tasks, b.stages[s].num_tasks);
    EXPECT_EQ(a.stages[s].consolidation_bytes,
              b.stages[s].consolidation_bytes);
    EXPECT_EQ(a.stages[s].aggregation_bytes, b.stages[s].aggregation_bytes);
    EXPECT_EQ(a.stages[s].flops, b.stages[s].flops);
    EXPECT_EQ(a.stages[s].max_task_memory, b.stages[s].max_task_memory);
    // The modeled cluster time must not depend on host-side prefetching.
    EXPECT_EQ(a.stages[s].elapsed_seconds, b.stages[s].elapsed_seconds);
  }
  EXPECT_EQ(a.consolidation_bytes, b.consolidation_bytes);
  EXPECT_EQ(a.aggregation_bytes, b.aggregation_bytes);
  EXPECT_EQ(a.flops, b.flops);
  EXPECT_EQ(a.max_task_memory, b.max_task_memory);
  EXPECT_EQ(a.elapsed_seconds, b.elapsed_seconds);

  // Recovery: the injector's schedule is a pure function of
  // (seed, stage, item, attempt), so prefetching cannot change it.
  ASSERT_EQ(a.telemetry.size(), b.telemetry.size());
  for (std::size_t s = 0; s < a.telemetry.size(); ++s) {
    SCOPED_TRACE("telemetry " + a.telemetry[s].label);
    EXPECT_EQ(a.telemetry[s].recovery.attempts, b.telemetry[s].recovery.attempts);
    EXPECT_EQ(a.telemetry[s].recovery.retries, b.telemetry[s].recovery.retries);
    EXPECT_EQ(a.telemetry[s].recovery.injected_failures,
              b.telemetry[s].recovery.injected_failures);
    EXPECT_EQ(a.telemetry[s].recovery.exhausted_items,
              b.telemetry[s].recovery.exhausted_items);
  }
}

class PrefetchDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_ = GlobalParallelism();
    SetGlobalThreadPoolThreads(8);
  }
  void TearDown() override { SetGlobalThreadPoolThreads(previous_); }

 private:
  int previous_ = 1;
};

struct GnmfFixture {
  GnmfQuery q;
  std::map<NodeId, BlockedMatrix> inputs;

  GnmfFixture() : q(BuildGnmf(26, 20, 6, /*x_nnz=*/104)) {
    SparseMatrix x = RandomSparse(26, 20, 0.2, /*seed=*/51, 1.0, 5.0);
    DenseMatrix v = RandomDense(26, 6, /*seed=*/52, 0.5, 1.5);
    DenseMatrix u = RandomDense(6, 20, /*seed=*/53, 0.5, 1.5);
    inputs[q.X] = BlockedMatrix::FromSparse(x, kBs);
    inputs[q.V] = BlockedMatrix::FromDense(v, kBs);
    inputs[q.U] = BlockedMatrix::FromDense(u, kBs);
  }
};

TEST_F(PrefetchDeterminismTest, GnmfSweepOverDepthsAndThreads) {
  GnmfFixture f;
  Engine baseline(Options(/*local_threads=*/1, /*prefetch_depth=*/0));
  const Engine::RunResult base = baseline.Run(f.q.dag, f.inputs);
  for (int depth : {1, 2, 8}) {
    for (int threads : {1, 4, 8}) {
      SCOPED_TRACE("depth " + std::to_string(depth) + " threads " +
                   std::to_string(threads));
      Engine engine(Options(threads, depth));
      ExpectIdenticalRuns(base, engine.Run(f.q.dag, f.inputs));
    }
  }
}

TEST_F(PrefetchDeterminismTest, ForcedOperatorsSweepOverDepths) {
  // The fused NMF plan forced through each physical operator; kCpmm's
  // R>1 two-phase path exercises prefetch across the k-split and the
  // injected-partial second phase.
  NmfPattern q = BuildNmfPattern(40, 36, 24, /*x_nnz=*/288);
  std::map<NodeId, BlockedMatrix> inputs;
  inputs[q.X] = BlockedMatrix::FromSparse(
      RandomSparse(40, 36, 0.2, /*seed=*/61, 1.0, 5.0), kBs);
  inputs[q.U] =
      BlockedMatrix::FromDense(RandomDense(40, 24, /*seed=*/62, 0.5, 1.5), kBs);
  inputs[q.V] =
      BlockedMatrix::FromDense(RandomDense(36, 24, /*seed=*/63, 0.5, 1.5), kBs);
  FusionPlanSet full;
  full.plans.emplace_back(
      &q.dag, std::vector<NodeId>{q.vT, q.mm, q.add, q.log, q.mul}, q.mul);
  for (OperatorKind kind : {OperatorKind::kCfo, OperatorKind::kBfo,
                            OperatorKind::kRfo, OperatorKind::kCpmm}) {
    SCOPED_TRACE("operator " + std::to_string(static_cast<int>(kind)));
    Engine baseline(Options(/*local_threads=*/1, /*prefetch_depth=*/0));
    // One artifact for every depth: prefetch_depth is result-invariant,
    // so CheckCompatible accepts it on engines with different depths and
    // the replayed plan must stay bitwise identical.
    auto compiled = baseline.CompileWithPlans(q.dag, full, kind);
    ASSERT_TRUE(compiled.ok()) << compiled.status();
    const Engine::RunResult base = baseline.Execute(*compiled, inputs);
    for (int depth : {2, 8}) {
      SCOPED_TRACE("depth " + std::to_string(depth));
      Engine engine(Options(/*local_threads=*/8, depth));
      ExpectIdenticalRuns(base, engine.Execute(*compiled, inputs));
    }
  }
}

TEST_F(PrefetchDeterminismTest, FaultScheduleReplaysInFlightPrefetches) {
  // An injected task failure kills a work-item attempt while its
  // prefetches are still staged; the retry must replay from scratch with
  // identical results and an identical recovery trace at every depth.
  GnmfFixture f;
  for (const auto& [seed, probability] :
       std::vector<std::pair<std::uint64_t, double>>{{7, 0.3}, {11, 0.6}}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    EngineOptions base_opts = Options(/*local_threads=*/1, 0);
    base_opts.faults.seed = seed;
    base_opts.faults.task_failure_probability = probability;
    base_opts.recovery.retry.max_attempts = 5;
    base_opts.recovery.retry.backoff_base_seconds = 0.0;
    Engine baseline(base_opts);
    const Engine::RunResult base = baseline.Run(f.q.dag, f.inputs);
    ASSERT_TRUE(base.report.ok()) << base.report.status;
    for (int depth : {1, 2, 8}) {
      for (int threads : {1, 8}) {
        SCOPED_TRACE("depth " + std::to_string(depth) + " threads " +
                     std::to_string(threads));
        EngineOptions opts = Options(threads, depth);
        opts.faults = base_opts.faults;
        opts.recovery = base_opts.recovery;
        Engine engine(opts);
        ExpectIdenticalRuns(base, engine.Run(f.q.dag, f.inputs));
      }
    }
  }
}

TEST_F(PrefetchDeterminismTest, ElapsedSecondsSetOnBothExecutionPaths) {
  // StageStats.elapsed_seconds is the *modeled* cluster time, and the
  // engine fills it on the real path exactly as on the analytic path.
  GnmfFixture f;
  EngineOptions real_opts = Options(/*local_threads=*/4, 2);
  EngineOptions analytic_opts = real_opts;
  analytic_opts.analytic = true;
  Engine real_engine(real_opts);
  Engine analytic_engine(analytic_opts);
  const Engine::RunResult real = real_engine.Run(f.q.dag, f.inputs);
  const Engine::RunResult analytic = analytic_engine.Run(f.q.dag, f.inputs);
  ASSERT_TRUE(real.report.ok()) << real.report.status;
  ASSERT_TRUE(analytic.report.ok()) << analytic.report.status;
  for (const Engine::RunResult* run : {&real, &analytic}) {
    for (const StageStats& s : run->report.stages) {
      if (s.num_tasks > 0) {
        EXPECT_GT(s.elapsed_seconds, 0.0) << s.label;
      }
    }
  }
}

TEST_F(PrefetchDeterminismTest, PipelineTelemetryRecordsPrefetchActivity) {
  // With prefetching on, real-mode stages report staged-copy consumption
  // in StageTelemetry.pipeline — wall-clock observability only, never
  // folded into StageStats.
  GnmfFixture f;
  Engine engine(Options(/*local_threads=*/4, /*prefetch_depth=*/2));
  const Engine::RunResult run = engine.Run(f.q.dag, f.inputs);
  ASSERT_TRUE(run.report.ok()) << run.report.status;
  std::int64_t consumed = 0;
  for (const StageTelemetry& t : run.report.telemetry) {
    consumed += t.pipeline.prefetch_ready + t.pipeline.prefetch_waited +
                t.pipeline.prefetch_stolen;
    EXPECT_GE(t.pipeline.compute_busy_seconds, 0.0);
    EXPECT_GE(t.pipeline.fetch_wait_seconds, 0.0);
    const double eff = t.pipeline.OverlapEfficiency();
    EXPECT_GE(eff, 0.0);
    EXPECT_LE(eff, 1.0);
  }
  EXPECT_GT(consumed, 0) << "no staged block was ever consumed";
}

}  // namespace
}  // namespace fuseme
