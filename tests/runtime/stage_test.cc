#include "runtime/stage.h"

#include <gtest/gtest.h>

namespace fuseme {
namespace {

ClusterConfig SmallCluster() {
  ClusterConfig config;
  config.num_nodes = 2;
  config.tasks_per_node = 2;
  config.task_memory_budget = 1000;
  return config;
}

TEST(StageContextTest, ChargesAccumulatePerTask) {
  StageContext ctx("test", SmallCluster());
  ctx.ChargeConsolidation(0, 100);
  ctx.ChargeConsolidation(0, 50);
  ctx.ChargeConsolidation(2, 10);
  ctx.ChargeAggregation(1, 25);
  ctx.ChargeFlops(0, 1000);
  ctx.ChargeFlops(1, 2000);

  EXPECT_EQ(ctx.task(0).consolidation_bytes, 150);
  EXPECT_EQ(ctx.task(2).consolidation_bytes, 10);
  EXPECT_EQ(ctx.task(1).aggregation_bytes, 25);
  EXPECT_EQ(ctx.task(1).flops, 2000);
  EXPECT_EQ(ctx.num_tasks(), 3);
}

TEST(StageContextTest, MemoryWithinBudgetIsOk) {
  StageContext ctx("test", SmallCluster());
  EXPECT_TRUE(ctx.ChargeMemory(0, 600).ok());
  EXPECT_TRUE(ctx.ChargeMemory(0, 400).ok());  // exactly at budget
  EXPECT_EQ(ctx.task(0).memory_peak, 1000);
}

TEST(StageContextTest, MemoryOverBudgetIsOutOfMemory) {
  StageContext ctx("bfo", SmallCluster());
  EXPECT_TRUE(ctx.ChargeMemory(0, 900).ok());
  Status st = ctx.ChargeMemory(0, 200);
  EXPECT_TRUE(st.IsOutOfMemory());
  EXPECT_NE(st.message().find("bfo"), std::string::npos);
}

TEST(StageContextTest, ReleaseKeepsPeak) {
  StageContext ctx("test", SmallCluster());
  ASSERT_TRUE(ctx.ChargeMemory(0, 800).ok());
  ctx.ReleaseMemory(0, 800);
  EXPECT_EQ(ctx.task(0).memory_used, 0);
  EXPECT_EQ(ctx.task(0).memory_peak, 800);
  // Freed memory can be reused without tripping the budget.
  EXPECT_TRUE(ctx.ChargeMemory(0, 900).ok());
  EXPECT_EQ(ctx.task(0).memory_peak, 900);
}

TEST(StageContextTest, FinalizeAggregates) {
  StageContext ctx("stage", SmallCluster());
  ctx.ChargeConsolidation(0, 100);
  ctx.ChargeConsolidation(1, 200);
  ctx.ChargeAggregation(1, 50);
  ctx.ChargeFlops(0, 10);
  ctx.ChargeFlops(1, 20);
  ASSERT_TRUE(ctx.ChargeMemory(0, 500).ok());
  ASSERT_TRUE(ctx.ChargeMemory(1, 700).ok());

  StageStats stats = ctx.Finalize();
  EXPECT_EQ(stats.label, "stage");
  EXPECT_EQ(stats.num_tasks, 2);
  EXPECT_EQ(stats.consolidation_bytes, 300);
  EXPECT_EQ(stats.aggregation_bytes, 50);
  EXPECT_EQ(stats.total_bytes(), 350);
  EXPECT_EQ(stats.flops, 30);
  EXPECT_EQ(stats.max_task_memory, 700);
}

TEST(StageContextTest, UnknownTaskReadsEmpty) {
  StageContext ctx("test", SmallCluster());
  EXPECT_EQ(ctx.task(99).flops, 0);
}

TEST(LocalStageAccountingTest, FlushMergesIntoParent) {
  StageContext ctx("stage", SmallCluster());
  ctx.ChargeFlops(0, 5);
  LocalStageAccounting local(&ctx);
  local.ChargeConsolidation(0, 100);
  local.ChargeAggregation(1, 50);
  local.ChargeFlops(0, 10);
  ASSERT_TRUE(local.ChargeMemory(1, 400).ok());

  // Nothing lands on the parent until Flush.
  EXPECT_EQ(ctx.task(0).consolidation_bytes, 0);
  EXPECT_EQ(ctx.task(1).memory_used, 0);

  ASSERT_TRUE(local.Flush().ok());
  EXPECT_EQ(ctx.task(0).consolidation_bytes, 100);
  EXPECT_EQ(ctx.task(0).flops, 15);
  EXPECT_EQ(ctx.task(1).aggregation_bytes, 50);
  EXPECT_EQ(ctx.task(1).memory_used, 400);
  EXPECT_EQ(ctx.task(1).memory_peak, 400);

  // Flush clears the local state: a second flush is a no-op.
  ASSERT_TRUE(local.Flush().ok());
  EXPECT_EQ(ctx.task(0).flops, 15);
}

TEST(LocalStageAccountingTest, LocalBudgetFailsFast) {
  // The per-task budget is enforced locally too, with the same message a
  // serial run produces.
  StageContext ctx("bfo", SmallCluster());
  LocalStageAccounting local(&ctx);
  ASSERT_TRUE(local.ChargeMemory(0, 900).ok());
  Status st = local.ChargeMemory(0, 200);
  EXPECT_TRUE(st.IsOutOfMemory());
  EXPECT_NE(st.message().find("bfo: task 0 needs"), std::string::npos) << st;
}

TEST(LocalStageAccountingTest, MergeRevalidatesCombinedBudget) {
  // Each side stays under budget alone; the merged total must not.
  StageContext ctx("stage", SmallCluster());
  ASSERT_TRUE(ctx.ChargeMemory(0, 600).ok());
  LocalStageAccounting local(&ctx);
  ASSERT_TRUE(local.ChargeMemory(0, 600).ok());
  Status st = local.Flush();
  EXPECT_TRUE(st.IsOutOfMemory()) << st;
  EXPECT_EQ(ctx.task(0).memory_used, 1200);
}

TEST(LocalStageAccountingTest, MergePeakAccountsForParentBaseline) {
  // Task 0 already holds 300 bytes; a work item that peaked at 500 on top
  // of it implies a true peak of 800.
  StageContext ctx("stage", SmallCluster());
  ASSERT_TRUE(ctx.ChargeMemory(0, 300).ok());
  LocalStageAccounting local(&ctx);
  ASSERT_TRUE(local.ChargeMemory(0, 500).ok());
  local.ReleaseMemory(0, 500);
  ASSERT_TRUE(local.Flush().ok());
  EXPECT_EQ(ctx.task(0).memory_used, 300);
  EXPECT_EQ(ctx.task(0).memory_peak, 800);
}

}  // namespace
}  // namespace fuseme
