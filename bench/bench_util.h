// Shared helpers for the experiment harnesses: paper-style cell formatting
// (numbers, "O.O.M.", "T.O.") and simple aligned tables.

#ifndef FUSEME_BENCH_BENCH_UTIL_H_
#define FUSEME_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "engine/engine.h"

namespace fuseme::bench {

/// Formats an execution outcome the way the paper's figures label bars:
/// elapsed seconds, or the failure marker.
inline std::string ElapsedCell(const ExecutionReport& report) {
  if (report.status.IsOutOfMemory()) return "O.O.M.";
  if (report.status.IsTimedOut()) return "T.O.";
  if (!report.status.ok()) return "ERR";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", report.elapsed_seconds);
  return buf;
}

/// Same for communication cost in GB.
inline std::string BytesCell(const ExecutionReport& report) {
  if (report.status.IsOutOfMemory()) return "O.O.M.";
  if (report.status.IsTimedOut()) return "T.O.";
  if (!report.status.ok()) return "ERR";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f",
                static_cast<double>(report.total_bytes()) / 1e9);
  return buf;
}

inline void PrintRow(const std::vector<std::string>& cells, int width = 14) {
  for (const std::string& cell : cells) {
    std::printf("%-*s", width, cell.c_str());
  }
  std::printf("\n");
}

inline void PrintRule(std::size_t cells, int width = 14) {
  std::printf("%s\n",
              std::string(cells * static_cast<std::size_t>(width), '-')
                  .c_str());
}

}  // namespace fuseme::bench

#endif  // FUSEME_BENCH_BENCH_UTIL_H_
