// Sparsity-aware load balancing (the paper's §8 future-work extension):
// with a skewed mask, weighted cuboid splits must even out per-task work
// without changing the result.

#include <algorithm>

#include <gtest/gtest.h>

#include "engine/reference.h"
#include "matrix/generators.h"
#include "engine/engine.h"
#include "ops/fused_operator.h"
#include "workloads/queries.h"

namespace fuseme {
namespace {

constexpr std::int64_t kBs = 8;

ClusterConfig TestCluster() {
  ClusterConfig config;
  config.num_nodes = 2;
  config.tasks_per_node = 2;
  config.block_size = kBs;
  config.task_memory_budget = 1LL << 40;
  return config;
}

/// X with all non-zeros crowded into the top-left quarter: a worst case
/// for uniform range splits.
SparseMatrix SkewedMask(std::int64_t n, double density,
                        std::uint64_t seed) {
  SparseMatrix dense_corner =
      RandomSparse(n / 2, n / 2, density * 4, seed, 1.0, 2.0);
  std::vector<std::tuple<std::int64_t, std::int64_t, double>> triplets;
  dense_corner.ForEach([&](std::int64_t i, std::int64_t j, double v) {
    triplets.emplace_back(i, j, v);
  });
  return SparseMatrix::FromTriplets(n, n, std::move(triplets));
}

struct RunStats {
  DenseMatrix result;
  std::int64_t max_task_flops = 0;
  std::int64_t total_flops = 0;
  int tasks = 0;
};

RunStats RunWith(bool balance) {
  const std::int64_t n = 64, k = 10;
  NmfPattern q = BuildNmfPattern(n, n, k, n * n / 20);
  SparseMatrix x = SkewedMask(n, 0.05, /*seed=*/7);
  DenseMatrix u = RandomDense(n, k, 8, 0.5, 1.5);
  DenseMatrix v = RandomDense(n, k, 9, 0.5, 1.5);

  std::map<NodeId, BlockedMatrix> blocked;
  blocked[q.X] = BlockedMatrix::FromSparse(x, kBs);
  blocked[q.U] = BlockedMatrix::FromDense(u, kBs);
  blocked[q.V] = BlockedMatrix::FromDense(v, kBs);
  std::map<NodeId, DistributedMatrix> dist;
  FusedInputs inputs;
  for (auto& [id, m] : blocked) {
    dist.emplace(id,
                 DistributedMatrix::Create(m, PartitionScheme::kGrid, 4));
  }
  for (auto& [id, dm] : dist) inputs[id] = &dm;

  PartialPlan plan(&q.dag, {q.vT, q.mm, q.add, q.log, q.mul}, q.mul);
  StageContext ctx("balance", TestCluster());
  CuboidOptions options;
  options.balance_sparsity = balance;
  auto result = CuboidFusedOperator::Execute(plan, Cuboid{4, 2, 1}, inputs,
                                             &ctx, options);
  FUSEME_CHECK(result.ok()) << result.status();
  RunStats stats;
  stats.result = result->blocks().ToDense();
  stats.tasks = ctx.num_tasks();
  for (int t = 0; t < ctx.num_tasks(); ++t) {
    stats.max_task_flops =
        std::max(stats.max_task_flops, ctx.task(t).flops);
    stats.total_flops += ctx.task(t).flops;
  }
  return stats;
}

TEST(BalanceTest, WeightedSplitEvensOutSkewedWork) {
  RunStats uniform = RunWith(false);
  RunStats balanced = RunWith(true);
  // Same numbers either way.
  EXPECT_LE(DenseMatrix::MaxAbsDiff(uniform.result, balanced.result),
            1e-12);
  // Comparable total work, but a much lower per-task peak: the straggler
  // task shrinks.
  EXPECT_LT(balanced.max_task_flops, uniform.max_task_flops);
  const double uniform_skew =
      static_cast<double>(uniform.max_task_flops) * uniform.tasks /
      static_cast<double>(uniform.total_flops);
  const double balanced_skew =
      static_cast<double>(balanced.max_task_flops) * balanced.tasks /
      static_cast<double>(balanced.total_flops);
  EXPECT_LT(balanced_skew, uniform_skew);
}

TEST(BalanceTest, UniformMaskIsUnaffected) {
  // On a uniform mask the weighted split degenerates to ~the uniform one;
  // results stay identical.
  const std::int64_t n = 48, k = 6;
  NmfPattern q = BuildNmfPattern(n, n, k, n * n / 10);
  SparseMatrix x = RandomSparse(n, n, 0.1, 11, 1.0, 2.0);
  std::map<NodeId, BlockedMatrix> blocked;
  blocked[q.X] = BlockedMatrix::FromSparse(x, kBs);
  blocked[q.U] = BlockedMatrix::FromDense(RandomDense(n, k, 12), kBs);
  blocked[q.V] = BlockedMatrix::FromDense(RandomDense(n, k, 13), kBs);
  std::map<NodeId, DistributedMatrix> dist;
  FusedInputs inputs;
  for (auto& [id, m] : blocked) {
    dist.emplace(id,
                 DistributedMatrix::Create(m, PartitionScheme::kGrid, 4));
  }
  for (auto& [id, dm] : dist) inputs[id] = &dm;
  PartialPlan plan(&q.dag, {q.vT, q.mm, q.add, q.log, q.mul}, q.mul);

  DenseMatrix results[2];
  for (bool balance : {false, true}) {
    StageContext ctx("uniform", TestCluster());
    CuboidOptions options;
    options.balance_sparsity = balance;
    auto result = CuboidFusedOperator::Execute(plan, Cuboid{3, 2, 1},
                                               inputs, &ctx, options);
    ASSERT_TRUE(result.ok());
    results[balance ? 1 : 0] = result->blocks().ToDense();
  }
  EXPECT_LE(DenseMatrix::MaxAbsDiff(results[0], results[1]), 1e-12);
}

TEST(BalanceTest, EngineOptionPlumbsThrough) {
  const std::int64_t n = 64, k = 10;
  NmfPattern q = BuildNmfPattern(n, n, k, n * n / 20);
  SparseMatrix x = SkewedMask(n, 0.05, 17);
  std::map<NodeId, BlockedMatrix> inputs;
  inputs[q.X] = BlockedMatrix::FromSparse(x, kBs);
  inputs[q.U] = BlockedMatrix::FromDense(RandomDense(n, k, 18), kBs);
  inputs[q.V] = BlockedMatrix::FromDense(RandomDense(n, k, 19), kBs);
  auto expected =
      ReferenceEval(q.dag, q.mul,
                    {{q.X, x.ToDense()},
                     {q.U, RandomDense(n, k, 18)},
                     {q.V, RandomDense(n, k, 19)}});
  ASSERT_TRUE(expected.ok());
  EngineOptions options;
  options.cluster = TestCluster();
  options.balance_sparsity = true;
  Engine engine(options);
  auto run = engine.Run(q.dag, inputs);
  ASSERT_TRUE(run.report.ok()) << run.report.status;
  EXPECT_LE(DenseMatrix::MaxAbsDiff(
                run.outputs.at(q.mul).blocks().ToDense(), *expected),
            1e-9);
}

}  // namespace
}  // namespace fuseme
