file(REMOVE_RECURSE
  "CMakeFiles/fused_operator_test.dir/fused_operator_test.cc.o"
  "CMakeFiles/fused_operator_test.dir/fused_operator_test.cc.o.d"
  "fused_operator_test"
  "fused_operator_test.pdb"
  "fused_operator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fused_operator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
