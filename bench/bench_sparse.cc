// Sparsity-aware kernels vs dense-style execution on fig-14-like cells
// (DESIGN.md section 15).
//
// Four kernel cells at a fixed thread count, each timing the dense-style
// formulation (what a density-oblivious engine executes) against the
// CSR-direct kernel on the same operands:
//
//   spmm           sparse×dense matmul vs densified GEMM (~1% density)
//   sddmm          masked dot products vs full GEMM + mask gather
//   ewise_mul      both-sparse element-wise multiply: merge-join vs the
//                  per-entry At() binary-search loop (0.1% density)
//   transpose_spmm fused aᵀ·b vs materialize-transpose-then-SpMM
//
// A final engine-level cell runs a real-mode sparse NMF stage (the
// FindSparseDriver hot path) and checks the cost model's prediction stays
// within a factor of 2 of the measured stage accounting.
//
// Exits non-zero when fewer than two kernel cells show a speedup > 1.0 or
// the prediction check fails — scripts/run_bench_smoke.sh and check.sh
// treat that as a regression.
//
// Environment overrides for quick smoke runs:
//   FUSEME_BENCH_SPARSE_N   base matrix dimension (default 1536)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "matrix/block_ops.h"
#include "matrix/generators.h"
#include "matrix/sparse_kernels.h"
#include "telemetry/metrics.h"
#include "telemetry/prediction.h"
#include "workloads/queries.h"

using namespace fuseme;         // NOLINT
using namespace fuseme::bench;  // NOLINT

namespace {

std::vector<BenchRecord> g_records;
MetricsRegistry g_metrics;
int g_speedup_cells = 0;

template <typename Fn>
double BestSeconds(int reps, Fn&& fn) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

void RecordCell(const std::string& cell, double dense_seconds,
                double sparse_seconds, std::int64_t dense_flops,
                std::int64_t sparse_flops,
                std::vector<std::pair<std::string, std::string>> config) {
  const double speedup = dense_seconds / sparse_seconds;
  if (speedup > 1.0) ++g_speedup_cells;
  std::printf("%-16s dense-style %.4fs   sparsity-aware %.4fs   speedup %.2fx\n",
              cell.c_str(), dense_seconds, sparse_seconds, speedup);

  BenchRecord dense;
  dense.name = cell + "_dense_style";
  dense.config = config;
  dense.elapsed_seconds = dense_seconds;
  dense.flops = dense_flops;
  g_records.push_back(std::move(dense));

  BenchRecord sparse;
  sparse.name = cell + "_sparsity_aware";
  sparse.config = std::move(config);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", speedup);
  sparse.config.emplace_back("speedup", buf);
  sparse.elapsed_seconds = sparse_seconds;
  sparse.flops = sparse_flops;
  g_records.push_back(std::move(sparse));
}

// fig-14 GNMF hot loop: X(m×k sparse, ~1%) times dense V(k×n).
void RunSpmmCell(std::int64_t n) {
  const std::int64_t cols = 64;
  const double density = 0.01;
  SparseMatrix a = RandomSparse(n, n, density, /*seed=*/1, 0.5, 2.0);
  DenseMatrix ad = a.ToDense();
  DenseMatrix b = RandomDense(n, cols, /*seed=*/2, 0.5, 2.0);
  Block dense_a = Block::FromDense(ad);
  Block dense_b = Block::FromDense(b);

  const double dense_s = BestSeconds(3, [&] {
    auto r = MatMul(dense_a, dense_b);
    if (!r.ok()) std::exit(1);
  });
  const double sparse_s = BestSeconds(3, [&] {
    DenseMatrix acc(n, cols);
    SpmmAccSparseDense(&acc, a, b, nullptr);
  });
  RecordCell("spmm", dense_s, sparse_s, 2 * n * n * cols,
             2 * a.nnz() * cols,
             {{"n", std::to_string(n)},
              {"cols", std::to_string(cols)},
              {"density", "0.01"}});
}

// ALS loss: S ⊙ (A·Bᵀ) evaluated at S's non-zeros only.
void RunSddmmCell(std::int64_t n) {
  const std::int64_t k = 64;
  const double density = 0.01;
  SparseMatrix mask = RandomSparse(n, n, density, /*seed=*/3, 1.0, 2.0);
  DenseMatrix a = RandomDense(n, k, /*seed=*/4, 0.5, 2.0);
  DenseMatrix b = RandomDense(k, n, /*seed=*/5, 0.5, 2.0);
  Block ba = Block::FromDense(a);
  Block bb = Block::FromDense(b);

  const double dense_s = BestSeconds(3, [&] {
    // Dense-style: full product, then gather at the mask's positions.
    auto r = MatMul(ba, bb);
    if (!r.ok()) std::exit(1);
    const DenseMatrix& full = r->dense();
    double sink = 0.0;
    mask.ForEach([&](std::int64_t i, std::int64_t j, double) {
      sink += full(i, j);
    });
    if (sink == 12345.6789) std::printf("|");  // keep the gather alive
  });
  const double sparse_s = BestSeconds(3, [&] {
    std::vector<double> dots(mask.nnz(), 0.0);
    SddmmAcc(mask, ba, bb, &dots, nullptr);
  });
  RecordCell("sddmm", dense_s, sparse_s, 2 * n * n * k,
             2 * mask.nnz() * k,
             {{"n", std::to_string(n)},
              {"k", std::to_string(k)},
              {"density", "0.01"}});
}

// Both-sparse element-wise multiply at 0.1% density: the merge-join vs the
// pre-fix per-entry At() binary-search loop.
void RunEwiseMulCell(std::int64_t n) {
  const std::int64_t dim = n * 2;
  const double density = 0.001;
  SparseMatrix a = RandomSparse(dim, dim, density, /*seed=*/6, 0.5, 2.0);
  SparseMatrix b = RandomSparse(dim, dim, density, /*seed=*/7, 0.5, 2.0);
  const int loops = 50;  // single products are microseconds; time batches

  const double dense_s = BestSeconds(3, [&] {
    for (int l = 0; l < loops; ++l) {
      // The pre-fix formulation: walk a's entries, binary-search b.
      std::vector<std::tuple<std::int64_t, std::int64_t, double>> t;
      a.ForEach([&](std::int64_t i, std::int64_t j, double v) {
        const double other = b.At(i, j);
        if (v * other != 0.0) t.emplace_back(i, j, v * other);
      });
      SparseMatrix out = SparseMatrix::FromTriplets(dim, dim, std::move(t));
      if (out.nnz() < 0) std::exit(1);
    }
  });
  const double sparse_s = BestSeconds(3, [&] {
    for (int l = 0; l < loops; ++l) {
      SparseMatrix out = EwiseMulMergeJoin(a, b, nullptr);
      if (out.nnz() < 0) std::exit(1);
    }
  });
  RecordCell("ewise_mul", dense_s, sparse_s, loops * a.nnz(),
             loops * std::min(a.nnz(), b.nnz()),
             {{"n", std::to_string(dim)}, {"density", "0.001"}});
}

// aᵀ·b with a stored untransposed: fused kernel vs materialize-then-SpMM.
void RunTransposeSpmmCell(std::int64_t n) {
  const std::int64_t cols = 64;
  const double density = 0.01;
  SparseMatrix a = RandomSparse(n, n, density, /*seed=*/8, 0.5, 2.0);
  DenseMatrix b = RandomDense(n, cols, /*seed=*/9, 0.5, 2.0);
  Block bb = Block::FromDense(b);

  const double dense_s = BestSeconds(3, [&] {
    SparseMatrix at = a.Transposed();
    DenseMatrix acc(n, cols);
    SpmmAccSparseDense(&acc, at, b, nullptr);
  });
  const double sparse_s = BestSeconds(3, [&] {
    DenseMatrix acc(n, cols);
    TransposeSpmmAcc(&acc, a, bb, nullptr);
  });
  RecordCell("transpose_spmm", dense_s, sparse_s, 2 * a.nnz() * cols,
             2 * a.nnz() * cols,
             {{"n", std::to_string(n)},
              {"cols", std::to_string(cols)},
              {"density", "0.01"}});
}

// Real-mode sparse NMF stage: the prediction the optimizer rode on must
// stay within a factor of 2 of the measured accounting.
bool RunPredictionCell(std::int64_t n) {
  const std::int64_t dim = std::max<std::int64_t>(256, n / 4);
  NmfPattern q = BuildNmfPattern(
      dim, dim, 32,
      static_cast<std::int64_t>(static_cast<double>(dim) * dim * 0.01));
  FusionPlanSet full;
  full.plans.emplace_back(
      &q.dag, std::vector<NodeId>{q.vT, q.mm, q.add, q.log, q.mul}, q.mul);
  std::map<NodeId, BlockedMatrix> inputs;
  inputs[q.X] = BlockedMatrix::FromSparse(
      RandomSparse(dim, dim, 0.01, /*seed=*/10, 1.0, 2.0), 64);
  inputs[q.U] = BlockedMatrix::FromDense(
      RandomDense(dim, 32, /*seed=*/11, 0.5, 1.5), 64);
  inputs[q.V] = BlockedMatrix::FromDense(
      RandomDense(dim, 32, /*seed=*/12, 0.5, 1.5), 64);

  EngineOptions options;
  options.system = SystemMode::kFuseMe;
  options.cluster.block_size = 64;
  options.metrics = &g_metrics;
  Engine engine(options);
  auto run = engine.RunWithPlans(q.dag, full, inputs, OperatorKind::kCfo);
  if (!run.report.ok()) {
    std::fprintf(stderr, "prediction cell failed: %s\n",
                 run.report.status.ToString().c_str());
    return false;
  }
  PredictionReport report = BuildPredictionReport(run.report.telemetry);
  const bool ok = report.WithinFactor(2.0);
  std::printf("%-16s worst |log2(actual/predicted)| = %.3f  (%s)\n",
              "prediction", report.max_abs_log2,
              ok ? "within 2x" : "OUT OF RANGE");
  BenchRecord r = RecordFor("sparse_stage_prediction", run.report,
                            {{"n", std::to_string(dim)},
                             {"density", "0.01"},
                             {"within_2x", ok ? "true" : "false"}});
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", report.max_abs_log2);
  r.config.emplace_back("max_abs_log2", buf);
  g_records.push_back(std::move(r));
  return ok;
}

}  // namespace

int main() {
  std::int64_t n = 1536;
  if (const char* env = std::getenv("FUSEME_BENCH_SPARSE_N")) {
    n = std::max<std::int64_t>(256, std::atoll(env));
  }
  // Fixed pool size so dense-style and sparsity-aware runs see identical
  // parallelism regardless of the host's core count.
  SetGlobalThreadPoolThreads(8);

  std::printf(
      "=== Sparsity-aware kernels vs dense-style execution (n=%lld, 8 "
      "threads) ===\n\n",
      static_cast<long long>(n));
  RunSpmmCell(n);
  RunSddmmCell(n);
  RunEwiseMulCell(n);
  RunTransposeSpmmCell(n);
  const bool prediction_ok = RunPredictionCell(n);

  if (!WriteBenchJson("sparse", g_records, g_metrics.Snapshot().ToJson())) {
    return 1;
  }

  if (g_speedup_cells < 2) {
    std::fprintf(stderr,
                 "FAIL: only %d cell(s) show a sparsity-aware speedup > 1.0 "
                 "(need >= 2)\n",
                 g_speedup_cells);
    return 1;
  }
  if (!prediction_ok) {
    std::fprintf(stderr,
                 "FAIL: sparse-stage prediction outside factor-of-2\n");
    return 1;
  }
  return 0;
}
