#include "runtime/simulator.h"

#include <gtest/gtest.h>

namespace fuseme {
namespace {

ClusterConfig TestCluster() {
  ClusterConfig config;
  config.num_nodes = 2;
  config.tasks_per_node = 4;
  config.net_bandwidth = 1000.0;       // 1000 B/s
  config.compute_bandwidth = 8000.0;   // per node -> 2000 flops/s per task
  config.task_launch_overhead = 0.0;
  config.shuffle_cpu_factor = 0.0;
  config.timeout_seconds = 1e9;
  return config;
}

StageStats MakeStage(int tasks, std::int64_t bytes, std::int64_t flops) {
  StageStats s;
  s.label = "s";
  s.num_tasks = tasks;
  s.consolidation_bytes = bytes;
  s.flops = flops;
  return s;
}

TEST(SimulatorTest, NetworkBoundStage) {
  Simulator sim(TestCluster());
  // 8 tasks on 2 nodes: 2000 B/s aggregate network.  4000 bytes -> 2s.
  // Compute: 8000 flops over 8 slots*2000 flops/s = 0.5s. Net dominates.
  double t = sim.EstimateStageSeconds(MakeStage(8, 4000, 8000));
  EXPECT_DOUBLE_EQ(t, 2.0);
}

TEST(SimulatorTest, ComputeBoundStage) {
  Simulator sim(TestCluster());
  // 160000 flops over 8 slots * 2000 = 10s; network 4000B/2000Bps = 2s.
  double t = sim.EstimateStageSeconds(MakeStage(8, 4000, 160000));
  EXPECT_DOUBLE_EQ(t, 10.0);
}

TEST(SimulatorTest, LimitedParallelismUsesFewerSlots) {
  Simulator sim(TestCluster());
  // 2 tasks fit on one node: network bandwidth of 1 node, 2 slots compute.
  double t = sim.EstimateStageSeconds(MakeStage(2, 1000, 8000));
  // net: 1000/1000 = 1s; comp: 8000/(2*2000) = 2s.
  EXPECT_DOUBLE_EQ(t, 2.0);
}

TEST(SimulatorTest, MoreTasksThanSlotsCostsOneBusyWindowPerWave) {
  ClusterConfig config = TestCluster();
  config.task_launch_overhead = 0.1;
  Simulator sim(config);
  // 20 tasks over 8 slots: waves of 8, 8, 4.  Each task computes
  // 16000/20 = 800 flops -> 0.4s per wave regardless of wave width.
  double t = sim.EstimateStageSeconds(MakeStage(20, 0, 16000));
  // 3 * 0.4s busy + 3 * 0.1 overhead.
  EXPECT_NEAR(t, 1.5, 1e-9);
}

TEST(SimulatorTest, MultiWaveNetworkStageScalesWithWaves) {
  Simulator sim(TestCluster());
  // 16 tasks, 2 full waves of 8, 4000 bytes each wave at 2000 B/s
  // aggregate: 2s per wave.
  double t = sim.EstimateStageSeconds(MakeStage(16, 8000, 0));
  EXPECT_DOUBLE_EQ(t, 4.0);
}

TEST(SimulatorTest, TailWaveUsesItsOwnNodeCount) {
  Simulator sim(TestCluster());
  // 10 tasks: one full wave of 8 (2 nodes) + a tail of 2 (1 node).
  // 1000 bytes/task.  Full wave: 8000/(2*1000) = 4s; tail: 2000/1000 = 2s.
  double t = sim.EstimateStageSeconds(MakeStage(10, 10000, 0));
  EXPECT_DOUBLE_EQ(t, 6.0);
}

TEST(SimulatorTest, ShuffleCpuFactorStretchesNetwork) {
  ClusterConfig config = TestCluster();
  config.shuffle_cpu_factor = 1.0;
  Simulator sim(config);
  double t = sim.EstimateStageSeconds(MakeStage(8, 4000, 8000));
  EXPECT_DOUBLE_EQ(t, 4.0);  // 2s network doubled
}

TEST(SimulatorTest, ClockAccumulatesAcrossStages) {
  Simulator sim(TestCluster());
  ASSERT_TRUE(sim.CompleteStage(MakeStage(8, 4000, 0)).ok());
  ASSERT_TRUE(sim.CompleteStage(MakeStage(8, 2000, 0)).ok());
  EXPECT_DOUBLE_EQ(sim.elapsed_seconds(), 3.0);
  EXPECT_EQ(sim.stages().size(), 2u);
  EXPECT_EQ(sim.total_bytes(), 6000);
}

TEST(SimulatorTest, TimeoutTrips) {
  ClusterConfig config = TestCluster();
  config.timeout_seconds = 2.5;
  Simulator sim(config);
  ASSERT_TRUE(sim.CompleteStage(MakeStage(8, 4000, 0)).ok());  // 2s
  Status st = sim.CompleteStage(MakeStage(8, 4000, 0));        // 4s total
  EXPECT_TRUE(st.IsTimedOut());
}

TEST(SimulatorTest, EmptyStageIsFree) {
  Simulator sim(TestCluster());
  EXPECT_DOUBLE_EQ(sim.EstimateStageSeconds(MakeStage(0, 0, 0)), 0.0);
}

TEST(SimulatorTest, ResetClearsHistory) {
  Simulator sim(TestCluster());
  ASSERT_TRUE(sim.CompleteStage(MakeStage(8, 4000, 0)).ok());
  sim.Reset();
  EXPECT_DOUBLE_EQ(sim.elapsed_seconds(), 0.0);
  EXPECT_TRUE(sim.stages().empty());
}

TEST(SimulatorTest, DefaultOverlapFactorKeepsMaxModel) {
  // overlap_factor defaults to 1: a wave costs max(net, comp) exactly, so
  // existing predictions (and analytic-mode elapsed_seconds) are
  // bitwise-unchanged by the overlap extension.
  ClusterConfig config = TestCluster();
  ASSERT_DOUBLE_EQ(config.overlap_factor, 1.0);
  Simulator sim(config);
  // net: 4000/2000 = 2s; comp: 8000/(8*2000) = 0.5s.
  EXPECT_DOUBLE_EQ(sim.EstimateStageSeconds(MakeStage(8, 4000, 8000)), 2.0);
}

TEST(SimulatorTest, ZeroOverlapFactorSerializesTransferAndCompute) {
  ClusterConfig config = TestCluster();
  config.overlap_factor = 0.0;
  Simulator sim(config);
  // No overlap: the wave pays net + comp = 2.0 + 0.5.
  EXPECT_DOUBLE_EQ(sim.EstimateStageSeconds(MakeStage(8, 4000, 8000)), 2.5);
}

TEST(SimulatorTest, PartialOverlapHidesFractionOfShorterPhase) {
  ClusterConfig config = TestCluster();
  config.overlap_factor = 0.6;
  Simulator sim(config);
  // max(2.0, 0.5) + (1 - 0.6) * min(2.0, 0.5) = 2.0 + 0.2.
  EXPECT_NEAR(sim.EstimateStageSeconds(MakeStage(8, 4000, 8000)), 2.2, 1e-12);
}

TEST(SimulatorTest, OverlapFactorOutsideRangeIsClamped) {
  ClusterConfig config = TestCluster();
  config.overlap_factor = 7.0;  // validation rejects this; simulator clamps
  Simulator sim(config);
  EXPECT_DOUBLE_EQ(sim.EstimateStageSeconds(MakeStage(8, 4000, 8000)), 2.0);
  config.overlap_factor = -3.0;
  Simulator sim2(config);
  EXPECT_DOUBLE_EQ(sim2.EstimateStageSeconds(MakeStage(8, 4000, 8000)), 2.5);
}

TEST(SimulatorTest, MoreNodesIsFasterForNetworkBoundStage) {
  // Reproduces the shape of Fig. 12(d,h): elapsed decreases with nodes.
  double prev = 1e18;
  for (int nodes : {2, 4, 8}) {
    ClusterConfig config = TestCluster();
    config.num_nodes = nodes;
    Simulator sim(config);
    double t = sim.EstimateStageSeconds(
        MakeStage(/*tasks=*/nodes * 4, 80000, 160000));
    EXPECT_LT(t, prev);
    prev = t;
  }
}

}  // namespace
}  // namespace fuseme
