// Validates the cost model against the closed forms of paper Table 1 for
// the running example O = X * log(U×Vᵀ + eps).

#include "cost/cost_model.h"

#include <gtest/gtest.h>

#include "workloads/queries.h"

namespace fuseme {
namespace {

ClusterConfig PaperCluster() {
  ClusterConfig config;
  config.num_nodes = 8;
  config.tasks_per_node = 12;
  config.block_size = 100;
  return config;
}

struct NmfSizes {
  double x, u, v, o;
};

NmfSizes Sizes(const NmfPattern& q) {
  NmfSizes s;
  s.x = static_cast<double>(SizeOf(q.dag, q.X));
  s.u = static_cast<double>(SizeOf(q.dag, q.U));
  s.v = static_cast<double>(SizeOf(q.dag, q.V));
  s.o = static_cast<double>(SizeOf(q.dag, q.mul));
  return s;
}

PartialPlan NmfPlan(const NmfPattern& q) {
  return PartialPlan(&q.dag, {q.vT, q.mm, q.add, q.log, q.mul}, q.mul);
}

TEST(CostModelTest, NetEstMatchesTable1) {
  // Table 1 CFO row: communication = R·|X| + Q·|U| + P·|V|.
  NmfPattern q = BuildNmfPattern(2000, 2000, 200, /*x_nnz=*/40000);
  PartialPlan plan = NmfPlan(q);
  CostModel model(PaperCluster());
  NmfSizes s = Sizes(q);
  for (const Cuboid c : {Cuboid{4, 3, 2}, Cuboid{2, 2, 1}, Cuboid{8, 1, 5}}) {
    const double expected = static_cast<double>(c.R) * s.x +
                            static_cast<double>(c.Q) * s.u +
                            static_cast<double>(c.P) * s.v;
    EXPECT_DOUBLE_EQ(model.NetEst(c, plan), expected) << c.ToString();
  }
}

TEST(CostModelTest, MemEstMatchesTable1) {
  // Table 1 CFO row (with T = P·Q·R):
  //   mem = R·|X|/T + Q·|U|/T + P·|V|/T + |O|/T
  //       = |X|/(P·Q) + |U|/(P·R) + |V|/(Q·R) + |O|/(P·Q).
  NmfPattern q = BuildNmfPattern(2000, 2000, 200, /*x_nnz=*/40000);
  PartialPlan plan = NmfPlan(q);
  CostModel model(PaperCluster());
  NmfSizes s = Sizes(q);
  for (const Cuboid c : {Cuboid{4, 3, 2}, Cuboid{2, 2, 1}, Cuboid{8, 1, 5}}) {
    const double expected =
        s.x / static_cast<double>(c.P * c.Q) +
        s.u / static_cast<double>(c.P * c.R) +
        s.v / static_cast<double>(c.Q * c.R) +
        s.o / static_cast<double>(c.P * c.Q);
    EXPECT_NEAR(model.MemEst(c, plan), expected, expected * 1e-12)
        << c.ToString();
  }
}

TEST(CostModelTest, BfoAndRfoAreSpecialCases) {
  // Paper §3.2: BFO behaves like (T, T, 1) and RFO like (I, J, 1).
  NmfPattern q = BuildNmfPattern(2000, 2000, 200, 40000);
  PartialPlan plan = NmfPlan(q);
  CostModel model(PaperCluster());
  NmfSizes s = Sizes(q);
  const double T = PaperCluster().total_tasks();

  // BFO: |X| + T·(|U| + |V|).
  Cuboid bfo{static_cast<std::int64_t>(T), static_cast<std::int64_t>(T), 1};
  EXPECT_DOUBLE_EQ(model.NetEst(bfo, plan), s.x + T * (s.u + s.v));

  // RFO: |X| + J·|U| + I·|V| with I=J=20 blocks (2000/100).
  Cuboid rfo{20, 20, 1};
  EXPECT_DOUBLE_EQ(model.NetEst(rfo, plan), s.x + 20 * s.u + 20 * s.v);
}

TEST(CostModelTest, GridDimsFromMainMatMul) {
  NmfPattern q = BuildNmfPattern(2000, 1500, 250, 40000);
  PartialPlan plan = NmfPlan(q);
  CostModel model(PaperCluster());
  GridDims g = model.Grid(plan);
  EXPECT_EQ(g.I, 20);  // 2000/100
  EXPECT_EQ(g.J, 15);  // 1500/100
  EXPECT_EQ(g.K, 3);   // ceil(250/100)
}

TEST(CostModelTest, GridDimsWithoutMatMul) {
  Dag dag;
  NodeId x = *dag.AddInput("X", 250, 130);
  NodeId u = *dag.AddUnary(UnaryFn::kExp, x);
  PartialPlan plan(&dag, {u}, u);
  CostModel model(PaperCluster());
  GridDims g = model.Grid(plan);
  EXPECT_EQ(g.I, 3);
  EXPECT_EQ(g.J, 2);
  EXPECT_EQ(g.K, 1);
}

TEST(CostModelTest, RGrowsAggregationNotOSpaceWork) {
  // Two-phase execution evaluates the O-space once on the r=0 tasks, so
  // growing R leaves ComEst unchanged but adds partial-aggregation bytes
  // ((R-1)·|MM output|) — this is what steers the optimizer away from
  // large R on dense outputs.
  NmfPattern q = BuildNmfPattern(1000, 1000, 100, /*x_nnz=*/1000000);
  PartialPlan plan = NmfPlan(q);
  CostModel model(PaperCluster());
  EXPECT_DOUBLE_EQ(model.ComEst(Cuboid{4, 4, 1}, plan),
                   model.ComEst(Cuboid{4, 4, 2}, plan));
  EXPECT_DOUBLE_EQ(model.AggBytes(Cuboid{4, 4, 1}, plan), 0.0);
  EXPECT_DOUBLE_EQ(model.AggBytes(Cuboid{4, 4, 3}, plan),
                   2.0 * 8 * 1000 * 1000);  // 2 dense partial copies
}

TEST(CostModelTest, SparseMaskShipsToEveryKSlice) {
  // With a sparse driver, the mask must reach all R k-slices: NetEst gains
  // (R-1)·|mask|, while the aggregation partials stay mask-sized.
  NmfPattern q = BuildNmfPattern(1000, 1000, 100, /*x_nnz=*/10000);
  PartialPlan plan = NmfPlan(q);
  CostModel model(PaperCluster());
  const double mask_bytes = static_cast<double>(SizeOf(q.dag, q.X));
  EXPECT_NEAR(model.NetEst(Cuboid{4, 4, 3}, plan) -
                  model.NetEst(Cuboid{4, 4, 1}, plan),
              2.0 * mask_bytes, 1.0);
  EXPECT_LE(model.AggBytes(Cuboid{4, 4, 3}, plan), 2.0 * mask_bytes);
}

TEST(CostModelTest, SparseDriverScalesMatMulCompute) {
  // With a 0.001-density mask, the fused operator evaluates the matmul
  // only at X's non-zeros: compute drops by orders of magnitude.
  NmfPattern dense_q = BuildNmfPattern(4000, 4000, 100, 16000000);
  NmfPattern sparse_q = BuildNmfPattern(4000, 4000, 100, 16000);
  CostModel model(PaperCluster());
  double dense_com = model.ComEst(Cuboid{4, 4, 1}, NmfPlan(dense_q));
  double sparse_com = model.ComEst(Cuboid{4, 4, 1}, NmfPlan(sparse_q));
  EXPECT_LT(sparse_com, dense_com / 100.0);
}

TEST(CostModelTest, CostIsMaxOfNormalizedTerms) {
  NmfPattern q = BuildNmfPattern(2000, 2000, 200, 40000);
  PartialPlan plan = NmfPlan(q);
  ClusterConfig config = PaperCluster();
  CostModel model(config);
  Cuboid c{4, 3, 2};
  const double n = config.num_nodes;
  double expected = std::max(
      (model.NetEst(c, plan) + model.AggBytes(c, plan)) /
          (n * config.net_bandwidth),
      model.ComEst(c, plan) / (n * config.compute_bandwidth));
  EXPECT_DOUBLE_EQ(model.Cost(c, plan), expected);
}

TEST(CostModelTest, NestedMatMulReplicationCompounds) {
  // GNMF F1 (Fig. 11): the distant matmul a2's inputs replicate by Q·R
  // while a4's side input replicates by P·R; splitting a2 off reduces cost.
  GnmfQuery q = BuildGnmf(10000, 8000, 200, /*x_nnz=*/80000);
  PartialPlan f1(&q.dag, {q.a1, q.a2, q.a3, q.a4, q.a5}, q.a5);
  CostModel model(PaperCluster());

  // vT feeds both the main matmul (L side, ×Q) and the nested a2 (deeper,
  // compounded) — growing Q must grow NetEst superlinearly vs the same
  // plan without a2.
  auto [fm, fi] = f1.SplitAt(q.a2);
  Cuboid narrow{2, 2, 1};
  Cuboid wide_q{2, 8, 1};
  const double full_growth =
      model.NetEst(wide_q, f1) / model.NetEst(narrow, f1);
  const double split_growth =
      model.NetEst(wide_q, fm) / model.NetEst(narrow, fm);
  EXPECT_GT(full_growth, split_growth);
}

TEST(NumOpTest, PerOperatorEstimates) {
  Dag dag;
  NodeId x = *dag.AddInput("X", 100, 100, 500);
  NodeId u = *dag.AddInput("U", 100, 100);
  EXPECT_EQ(NumOp(dag, x), 0);
  // Zero-preserving unary touches nnz; densifying unary touches cells.
  EXPECT_EQ(NumOp(dag, *dag.AddUnary(UnaryFn::kSquare, x)), 500);
  EXPECT_EQ(NumOp(dag, *dag.AddUnary(UnaryFn::kExp, x)), 10000);
  // Mul exploits the sparser side.
  EXPECT_EQ(NumOp(dag, *dag.AddBinary(BinaryFn::kMul, x, u)), 500);
  EXPECT_EQ(NumOp(dag, *dag.AddBinary(BinaryFn::kAdd, x, u)), 10000);
  // MatMul: sparse A scales flops.
  NodeId mm = *dag.AddMatMul(x, u);
  EXPECT_EQ(NumOp(dag, mm), 2 * 500 * 100);
  EXPECT_EQ(NumOp(dag, *dag.AddTranspose(x)), 500);
  EXPECT_EQ(NumOp(dag, *dag.AddUnaryAgg(AggFn::kSum, AggAxis::kAll, x)),
            500);
}

TEST(SizeOfTest, PicksStorageFormat) {
  Dag dag;
  NodeId dense = *dag.AddInput("D", 100, 100);
  NodeId sparse = *dag.AddInput("S", 100, 100, 100);
  EXPECT_EQ(SizeOf(dag, dense), 8 * 100 * 100);
  EXPECT_EQ(SizeOf(dag, sparse), 12 * 100 + 8 * 100);
  NodeId scalar = *dag.AddScalar(2.0);
  EXPECT_EQ(SizeOf(dag, scalar), 8);
}

}  // namespace
}  // namespace fuseme
