#!/usr/bin/env bash
# One-command correctness gate: build + run the plain test suite, then
# the whole suite again under AddressSanitizer (scripts/run_asan.sh).
# Usage: scripts/check.sh
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== plain suite (build/) =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build -j "$(nproc)"
(cd build && ctest --output-on-failure)

echo "== AddressSanitizer suite (build-asan/) =="
scripts/run_asan.sh

echo "== all checks passed =="
