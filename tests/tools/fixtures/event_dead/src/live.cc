// References kLive only; kDead stays unreferenced on purpose.

#include "telemetry/event_names.h"

namespace fixture {

const char* Live() { return fuseme::event_names::kLive; }

}  // namespace fixture
