#!/usr/bin/env bash
# One-command correctness gate:
#   1. build with -Werror + run the plain test suite (build/)
#   2. clang-tidy static analysis (skipped with a warning when the tool
#      is not installed — see scripts/run_tidy.sh)
#   3. the whole suite under UndefinedBehaviorSanitizer (build-ubsan/)
#   4. the whole suite under AddressSanitizer (build-asan/)
# Usage: scripts/check.sh
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== plain suite, -Werror (build/) =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DFUSEME_WERROR=ON
cmake --build build -j "$(nproc)"
(cd build && ctest --output-on-failure)

echo "== clang-tidy =="
scripts/run_tidy.sh

echo "== UndefinedBehaviorSanitizer suite (build-ubsan/) =="
scripts/run_ubsan.sh

echo "== AddressSanitizer suite (build-asan/) =="
scripts/run_asan.sh

echo "== all checks passed =="
