// Quickstart: build a matrix query, run it on the FuseME engine, and read
// the execution report.
//
//   $ ./build/examples/quickstart
//   $ ./build/examples/quickstart --faults   # same run under fault injection
//   $ ./build/examples/quickstart --prefetch-depth=0   # synchronous fetch
//
// The query is the paper's running example, O = X * log(U × Vᵀ + eps),
// with a sparse X — the pattern where cuboid-based fusion shines.  With
// --faults, a seeded schedule kills work items and stages OOM; the engine
// retries and degrades, and the result must stay bitwise identical to the
// clean run's.  --prefetch-depth=N sets how many output blocks ahead the
// async shuffle stages input copies (0 disables prefetching entirely);
// every depth must produce the same result and report.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "fuseme.h"

using namespace fuseme;  // NOLINT — example brevity

int main(int argc, char** argv) {
  bool with_faults = false;
  int prefetch_depth = -1;  // -1 = keep the ClusterConfig default
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--faults") == 0) {
      with_faults = true;
    } else if (std::strncmp(argv[i], "--prefetch-depth=", 17) == 0) {
      prefetch_depth = std::atoi(argv[i] + 17);
    } else {
      std::printf("usage: %s [--faults] [--prefetch-depth=N]\n", argv[0]);
      return 1;
    }
  }

  // --- 1. Describe the query as an expression DAG. -----------------------
  const std::int64_t n = 96, k = 16, block = 16;
  Dag dag;
  Expr X = Expr::Input(&dag, "X", n, n, /*nnz=*/n * n / 10);
  Expr U = Expr::Input(&dag, "U", n, k);
  Expr V = Expr::Input(&dag, "V", n, k);
  Expr O = (X * Log(MatMul(U, T(V)) + 1e-8)).MarkOutput();

  std::printf("Query: %s\n\nDAG:\n%s\n", ExprToString(dag, O.id()).c_str(),
              DagToString(dag).c_str());

  // --- 2. Bind input data. ----------------------------------------------
  SparseMatrix x = RandomSparse(n, n, 0.1, /*seed=*/1, 1.0, 5.0);
  DenseMatrix u = RandomDense(n, k, /*seed=*/2, 0.5, 1.5);
  DenseMatrix v = RandomDense(n, k, /*seed=*/3, 0.5, 1.5);
  std::map<NodeId, BlockedMatrix> inputs;
  inputs[X.id()] = BlockedMatrix::FromSparse(x, block);
  inputs[U.id()] = BlockedMatrix::FromDense(u, block);
  inputs[V.id()] = BlockedMatrix::FromDense(v, block);

  // --- 3. Configure a modeled cluster and run. ---------------------------
  ClusterConfig cluster;
  cluster.num_nodes = 4;
  cluster.tasks_per_node = 4;
  cluster.block_size = block;
  if (prefetch_depth >= 0) cluster.prefetch_depth = prefetch_depth;

  EngineOptions::Builder builder;
  builder.System(SystemMode::kFuseMe).Cluster(cluster);
  if (with_faults) {
    // A fixed seed makes the schedule reproducible: every run kills the
    // same attempts, so the retry counters below are exact, not flaky.
    FaultSpec faults;
    faults.seed = 42;
    faults.task_failure_probability = 0.2;
    faults.straggler_probability = 0.1;
    RecoveryOptions recovery;
    recovery.retry.max_attempts = 4;
    recovery.degrade_on_oom = true;
    builder.Faults(faults).Recovery(recovery);
  }
  Result<EngineOptions> options = builder.Build();
  if (!options.ok()) {
    std::printf("bad options: %s\n", options.status().ToString().c_str());
    return 1;
  }
  Result<Engine> engine = Engine::Create(*options);
  if (!engine.ok()) {
    std::printf("engine rejected: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  // Compile once (planner + verifier + solver resolution), then execute
  // the frozen artifact — re-Execute with new same-shaped inputs to skip
  // all of that planning work on later runs.
  Result<CompiledPlan> plan = engine->Compile(dag);
  if (!plan.ok()) {
    std::printf("compile failed: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  Engine::RunResult run = engine->Execute(*plan, inputs);
  if (!run.ok()) {
    std::printf("execution failed: %s\n", run.Summary().c_str());
    return 1;
  }

  // --- 4. Inspect the result and the report. -----------------------------
  DenseMatrix result = run.outputs.at(O.id()).blocks().ToDense();
  DenseMatrix expected = *ReferenceEval(
      dag, O.id(), {{X.id(), x.ToDense()}, {U.id(), u}, {V.id(), v}});
  const double diff = DenseMatrix::MaxAbsDiff(result, expected);
  std::printf("max |distributed - single-node| = %.3g\n", diff);

  std::printf("\nExecution report (%s):\n", run.Summary().c_str());
  for (const StageStats& stage : run.report.stages) {
    std::printf("  %-48s %4d tasks  %10s moved  %12lld flops\n",
                stage.label.c_str(), stage.num_tasks,
                HumanBytes(static_cast<double>(stage.total_bytes())).c_str(),
                static_cast<long long>(stage.flops));
  }

  if (with_faults) {
    std::printf(
        "\nRecovery: %lld attempts, %lld retries, %lld speculative "
        "copies, %zu degradations\n",
        static_cast<long long>(run.report.attempts),
        static_cast<long long>(run.report.total_retries()),
        static_cast<long long>(run.report.speculative_tasks),
        run.report.degradations.size());
    // The smoke contract scripts/check.sh relies on: injected failures
    // were absorbed (retries happened) and the numeric result survived
    // them untouched.
    if (run.report.total_retries() == 0) {
      std::printf("expected injected failures to cause retries\n");
      return 1;
    }
    if (diff > 1e-9) {
      std::printf("fault recovery changed the numeric result\n");
      return 1;
    }
    std::printf("fault-injection smoke: OK\n");
  }
  return 0;
}
