// Result<T>: value-or-Status, the return type of fallible producers.

#ifndef FUSEME_COMMON_RESULT_H_
#define FUSEME_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace fuseme {

/// Holds either a T or a non-OK Status.  Constructing from Status::OK() is a
/// programming error (there would be no value).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status)                          // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace fuseme

#define FUSEME_CONCAT_IMPL(a, b) a##b
#define FUSEME_CONCAT(a, b) FUSEME_CONCAT_IMPL(a, b)

/// Assigns the value of a Result-returning expression to `lhs`, or returns
/// the error from the current function.
#define FUSEME_ASSIGN_OR_RETURN(lhs, expr)                      \
  auto FUSEME_CONCAT(_result_, __LINE__) = (expr);              \
  if (!FUSEME_CONCAT(_result_, __LINE__).ok())                  \
    return FUSEME_CONCAT(_result_, __LINE__).status();          \
  lhs = std::move(FUSEME_CONCAT(_result_, __LINE__)).value()

#endif  // FUSEME_COMMON_RESULT_H_
